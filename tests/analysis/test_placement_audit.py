"""Placement auditor: merge nodes, partitions, costs, realisation."""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    audit_nodes,
    audit_offset_costs,
    audit_offset_realisation,
    audit_partition,
    audit_placement,
)
from repro.core.merge import MergeNode, PlacedProcedure
from repro.program.layout import Layout
from repro.program.program import Program


def rules_of(findings) -> set[str]:
    return {finding.rule for finding in findings}


class TestKnownGood:
    def test_gbsc_run_audits_clean(self, gbsc_run):
        context, result = gbsc_run
        assert audit_placement(result, context) == []

    def test_valid_nodes_are_clean(self, tiny_program, tiny_cache):
        nodes = [
            MergeNode(
                (PlacedProcedure("a", 0), PlacedProcedure("b", 1))
            ),
            MergeNode.single("c"),
        ]
        findings = audit_nodes(
            nodes, tiny_program, tiny_cache, popular=("a", "b", "c")
        )
        assert findings == []


class TestNodeCorruptions:
    def test_offset_out_of_range(self, tiny_program, tiny_cache):
        # tiny_cache has 4 lines; offset 7 cannot be cache-relative.
        nodes = [MergeNode((PlacedProcedure("a", 7),))]
        findings = audit_nodes(nodes, tiny_program, tiny_cache)
        assert rules_of(findings) == {"placement/offset-range"}

    def test_duplicate_across_nodes(self, tiny_program, tiny_cache):
        nodes = [MergeNode.single("a"), MergeNode.single("a")]
        findings = audit_nodes(nodes, tiny_program, tiny_cache)
        assert rules_of(findings) == {"placement/duplicate-procedure"}

    def test_unknown_procedure(self, tiny_program, tiny_cache):
        nodes = [MergeNode.single("who")]
        findings = audit_nodes(nodes, tiny_program, tiny_cache)
        assert rules_of(findings) == {"placement/unknown-procedure"}

    def test_popularity_mismatches(self, tiny_program, tiny_cache):
        # "b" placed but not popular; popular "c" never placed.
        nodes = [MergeNode.single("a"), MergeNode.single("b")]
        findings = audit_nodes(
            nodes, tiny_program, tiny_cache, popular=("a", "c")
        )
        assert rules_of(findings) == {
            "placement/not-popular",
            "placement/missing-popular",
        }


class TestPartition:
    def test_true_partition_is_clean(self, tiny_program):
        popular = ("a", "c")
        unpopular = ("b", "big", "tail")
        assert audit_partition(tiny_program, popular, unpopular) == []

    def test_overlap_reported(self, tiny_program):
        findings = audit_partition(
            tiny_program, ("a", "b"), ("b", "c", "big", "tail")
        )
        assert "placement/partition-overlap" in rules_of(findings)

    def test_coverage_gap_reported(self, tiny_program):
        findings = audit_partition(
            tiny_program, ("a",), ("b", "c", "big")
        )  # "tail" is in neither side
        assert "placement/partition-coverage" in rules_of(findings)


class TestOffsetCosts:
    def test_complete_vector_is_clean(self, tiny_cache):
        costs = np.array([3.0, 1.0, 2.0, 1.0])
        assert audit_offset_costs(costs, tiny_cache, chosen=1) == []

    def test_incomplete_evaluation_reported(self, tiny_cache):
        # Only 3 offsets evaluated for a 4-line cache: the Figure 4
        # search must consider every relative offset.
        costs = np.array([3.0, 1.0, 2.0])
        findings = audit_offset_costs(costs, tiny_cache)
        assert rules_of(findings) == {"placement/cost-length"}

    def test_nonfinite_and_negative_costs(self, tiny_cache):
        costs = np.array([np.inf, -1.0, 2.0, 1.0])
        rules = rules_of(audit_offset_costs(costs, tiny_cache))
        assert "placement/cost-nonfinite" in rules
        assert "placement/cost-negative" in rules

    def test_suboptimal_choice_reported(self, tiny_cache):
        costs = np.array([3.0, 1.0, 2.0, 1.0])
        findings = audit_offset_costs(costs, tiny_cache, chosen=3)
        assert rules_of(findings) == {"placement/cost-choice"}


class TestRealisation:
    def test_mismatched_layout_reported(self, tiny_cache):
        """Node says line 1, layout puts the procedure on line 2."""
        program = Program.from_sizes({"a": 32, "b": 32})
        nodes = [MergeNode((PlacedProcedure("a", 1),))]
        layout = Layout(program, {"a": 64, "b": 0})  # 64 % 128 = line 2
        findings = audit_offset_realisation(layout, nodes, tiny_cache)
        assert rules_of(findings) == {"placement/offset-mismatch"}

    def test_congruent_layout_is_clean(self, tiny_cache):
        program = Program.from_sizes({"a": 32, "b": 32})
        nodes = [MergeNode((PlacedProcedure("a", 1),))]
        # 160 % 128 = 32 → line 1: congruence, not equality, is checked.
        layout = Layout(program, {"a": 160, "b": 0})
        assert audit_offset_realisation(layout, nodes, tiny_cache) == []

    def test_missing_address_is_not_this_auditors_problem(
        self, tiny_cache
    ):
        """Realisation skips procedures the layout lacks — the layout
        auditor owns completeness."""
        program = Program.from_sizes({"a": 32, "b": 32})
        nodes = [MergeNode.single("whom")]
        layout = Layout(program, {"a": 0, "b": 32})
        assert audit_offset_realisation(layout, nodes, tiny_cache) == []
