"""Profile auditors: TRGs, working set, pair database."""

from __future__ import annotations

from repro.analysis import (
    audit_graph,
    audit_pair_db,
    audit_profiles,
    audit_trgs,
    audit_working_set,
)
from repro.cache.config import PAPER_CACHE, CacheConfig
from repro.profiles.graph import WeightedGraph
from repro.profiles.pairdb import PairDatabase
from repro.profiles.qset import WorkingSet
from repro.profiles.trg import build_trgs


def rules_of(findings) -> set[str]:
    return {finding.rule for finding in findings}


class TestKnownGood:
    def test_real_profiles_are_clean(self, gbsc_run):
        context, _ = gbsc_run
        findings = audit_profiles(
            trgs=context.trgs,
            wcg=context.wcg,
            pair_db=context.pair_db,
            config=PAPER_CACHE,
            program=context.program,
        )
        assert findings == []

    def test_live_working_set_is_clean(self, tiny_cache):
        working_set = WorkingSet(2 * tiny_cache.size, lambda _b: 48)
        for block in "abcdefgh":
            working_set.reference(block)
        assert audit_working_set(working_set, tiny_cache) == []


class TestGraphCorruptions:
    def test_asymmetric_edge_reported(self):
        graph = WeightedGraph()
        graph.add_edge("p", "q", 4.0)
        graph._adj["p"]["q"] = 7.0  # corrupt one direction
        findings = audit_graph(graph)
        assert rules_of(findings) == {"profile/asymmetric-edge"}

    def test_negative_weight_reported(self):
        graph = WeightedGraph()
        graph.add_edge("p", "q", 1.0)
        graph._adj["p"]["q"] = -1.0
        graph._adj["q"]["p"] = -1.0
        findings = audit_graph(graph)
        assert rules_of(findings) == {"profile/negative-weight"}

    def test_nonfinite_weight_reported(self):
        graph = WeightedGraph()
        graph.add_edge("p", "q", 1.0)
        graph._adj["p"]["q"] = float("nan")
        rules = rules_of(audit_graph(graph))
        assert "profile/nonfinite-weight" in rules

    def test_self_edge_reported(self):
        graph = WeightedGraph()
        graph.add_node("p")
        graph._adj["p"]["p"] = 2.0
        rules = rules_of(audit_graph(graph))
        assert "profile/self-edge" in rules


class TestWorkingSetCorruptions:
    def test_over_capacity_q_reported(self, tiny_cache):
        """Entries stuffed past the bound without eviction running."""
        working_set = WorkingSet(
            2 * tiny_cache.size, lambda _b: tiny_cache.size
        )
        for block in ("a", "b", "c", "d"):
            working_set._append(block)  # bypass reference()'s eviction
        findings = audit_working_set(working_set, tiny_cache)
        assert rules_of(findings) == {"profile/q-capacity"}

    def test_wrong_capacity_bound_reported(self, tiny_cache):
        working_set = WorkingSet(5 * tiny_cache.size, lambda _b: 16)
        working_set.reference("a")
        findings = audit_working_set(working_set, tiny_cache)
        assert rules_of(findings) == {"profile/q-bound"}

    def test_accounting_mismatch_reported(self, tiny_cache):
        working_set = WorkingSet(2 * tiny_cache.size, lambda _b: 16)
        working_set.reference("a")
        working_set._total_size += 5
        findings = audit_working_set(working_set, tiny_cache)
        assert "profile/q-accounting" in rules_of(findings)


class TestTRGCorruptions:
    def build_pair(self, program, trace, config):
        return build_trgs(trace, config)

    def test_granularity_violation_reported(self, gbsc_run):
        context, _ = gbsc_run
        trgs = context.trgs
        # A procedure-name node smuggled into the chunk graph.
        trgs.place._adj.setdefault("not-a-chunk", {})
        try:
            findings = audit_trgs(
                trgs, config=PAPER_CACHE, program=context.program
            )
            assert rules_of(findings) == {"profile/granularity"}
        finally:
            del trgs.place._adj["not-a-chunk"]

    def test_chunk_bounds_violation_reported(self, gbsc_run):
        from repro.program.procedure import ChunkId

        context, _ = gbsc_run
        trgs = context.trgs
        name = context.popular[0]
        bogus = ChunkId(name, 10_000)
        trgs.place._adj.setdefault(bogus, {})
        try:
            findings = audit_trgs(
                trgs, config=PAPER_CACHE, program=context.program
            )
            assert rules_of(findings) == {"profile/chunk-bounds"}
        finally:
            del trgs.place._adj[bogus]

    def test_granularity_mismatch_reported(self, tiny_cache):
        from repro.program.procedure import ChunkId

        from repro.profiles.trg import TRGBuildStats, TRGPair

        select = WeightedGraph()
        select.add_node("a")
        place = WeightedGraph()
        place.add_node(ChunkId("orphan", 0))
        trgs = TRGPair(
            select=select,
            place=place,
            select_stats=TRGBuildStats(1, 1.0),
            place_stats=TRGBuildStats(1, 1.0),
            chunk_size=256,
        )
        findings = audit_trgs(trgs)
        assert rules_of(findings) == {"profile/granularity-mismatch"}


class TestPairDatabase:
    def test_real_pair_db_round_trip(self):
        database = PairDatabase()
        database.record("p", ["r", "s", "t"])
        assert audit_pair_db(database) == []

    def test_self_pair_reported(self):
        database = PairDatabase()
        database.record("p", ["p", "r"])  # corrupt: endpoint leaked in
        findings = audit_pair_db(database)
        assert rules_of(findings) == {"profile/pair-self"}

    def test_degenerate_pair_reported(self):
        from collections import Counter

        database = PairDatabase()
        database.add_block("p")
        database._db["p"] = Counter({frozenset(("r",)): 3})
        findings = audit_pair_db(database)
        assert rules_of(findings) == {"profile/pair-arity"}

    def test_bad_count_reported(self):
        from collections import Counter

        database = PairDatabase()
        database.add_block("p")
        database._db["p"] = Counter({frozenset(("r", "s")): 0})
        findings = audit_pair_db(database)
        assert rules_of(findings) == {"profile/pair-count"}


class TestConfigMismatch:
    def test_trgs_built_for_other_cache_still_structurally_clean(self):
        """A structurally valid TRG pair audits clean even when the
        audited config differs — capacity lives in the working set,
        not the graphs."""
        config = CacheConfig(size=256, line_size=32)
        from repro.program.program import Program
        from repro.trace.events import TraceEvent
        from repro.trace.trace import Trace

        program = Program.from_sizes({"a": 64, "b": 64, "c": 64})
        events = [
            TraceEvent.full(name, program.size_of(name))
            for name in ("a", "b", "a", "c", "a")
        ]
        trace = Trace(program, events)
        trgs = build_trgs(trace, config)
        assert audit_trgs(trgs, config=config, program=program) == []
