"""SARIF/JSON rendering and run statistics."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import (
    Finding,
    Location,
    Severity,
    findings_to_json,
    findings_to_sarif,
    format_stats,
    render_sarif,
    rule_descriptions,
)
from repro.analysis.linter import run_linter_detailed

FINDINGS = [
    Finding(
        rule="det/wallclock",
        severity=Severity.ERROR,
        message="time.time() reads the wall clock",
        location=Location(file="src/repro/x.py", line=12),
    ),
    Finding(
        rule="arch/stale-allowlist",
        severity=Severity.WARNING,
        message="dead sanction",
        location=Location(file="src/repro/analysis/layering.py",
                          obj="a -> b"),
    ),
    Finding(
        rule="cache/misc",
        severity=Severity.INFO,
        message="informational",
    ),
]


class TestSarifShape:
    def test_log_carries_schema_version_and_single_run(self):
        log = findings_to_sarif(FINDINGS)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        assert len(log["runs"]) == 1

    def test_every_finding_becomes_a_result(self):
        results = findings_to_sarif(FINDINGS)["runs"][0]["results"]
        assert len(results) == len(FINDINGS)
        assert {r["ruleId"] for r in results} == {
            f.rule for f in FINDINGS
        }

    def test_severity_maps_to_sarif_levels(self):
        results = findings_to_sarif(FINDINGS)["runs"][0]["results"]
        levels = {r["ruleId"]: r["level"] for r in results}
        assert levels["det/wallclock"] == "error"
        assert levels["arch/stale-allowlist"] == "warning"
        assert levels["cache/misc"] == "note"

    def test_locations_carry_uri_and_line(self):
        results = findings_to_sarif(FINDINGS)["runs"][0]["results"]
        located = next(
            r for r in results if r["ruleId"] == "det/wallclock"
        )
        physical = located["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "src/repro/x.py"
        assert physical["region"]["startLine"] == 12
        bare = next(r for r in results if r["ruleId"] == "cache/misc")
        assert "locations" not in bare

    def test_driver_declares_every_result_rule(self):
        log = findings_to_sarif(
            FINDINGS, {"det/wallclock": "no wall-clock reads"}
        )
        driver = log["runs"][0]["tool"]["driver"]
        declared = {rule["id"] for rule in driver["rules"]}
        assert {f.rule for f in FINDINGS} <= declared
        by_id = {rule["id"]: rule for rule in driver["rules"]}
        assert (
            by_id["det/wallclock"]["shortDescription"]["text"]
            == "no wall-clock reads"
        )

    def test_render_is_valid_json_round_trip(self):
        text = render_sarif(FINDINGS, rule_descriptions())
        assert json.loads(text) == findings_to_sarif(
            FINDINGS, rule_descriptions()
        )

    def test_seeded_violation_run_round_trips(self, tmp_path):
        module = tmp_path / "seeded.py"
        module.write_text(textwrap.dedent("""
            import time
            from random import choice

            def f(xs=[]):
                return time.time()
        """))
        run = run_linter_detailed([tmp_path])
        assert run.findings
        log = findings_to_sarif(run.findings, rule_descriptions())
        results = log["runs"][0]["results"]
        assert len(results) == len(run.findings)
        assert {r["ruleId"] for r in results} == {
            f.rule for f in run.findings
        }


class TestJsonFormat:
    def test_findings_serialise_with_all_fields(self):
        payload = json.loads(findings_to_json(FINDINGS))
        assert len(payload) == len(FINDINGS)
        wallclock = next(
            item for item in payload if item["rule"] == "det/wallclock"
        )
        assert wallclock["severity"] == "error"
        assert wallclock["file"] == "src/repro/x.py"
        assert wallclock["line"] == 12


class TestStats:
    def test_stats_report_families_and_counts(self):
        text = format_stats(
            FINDINGS,
            files_scanned=7,
            rules_run=["det/wallclock", "det/unseeded-random",
                       "arch/cycle"],
        )
        assert "files scanned: 7" in text
        assert "rules run: 3 (arch=1, det=2)" in text
        assert "findings: 3 (1 error(s))" in text
        assert "det/wallclock: 1" in text

    def test_clean_run_stats(self):
        text = format_stats([], files_scanned=3, rules_run=["det/x"])
        assert "findings: 0 (0 error(s))" in text
