"""Tier-1 gate: the repository's own code passes the determinism lint.

This is the enforcement half of the linter — the rules in
``repro.analysis.rules`` are only worth having if the tree they guard
actually satisfies them.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis import format_findings, run_linter

SRC_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = SRC_ROOT.parent.parent


def test_repro_package_is_lint_clean():
    findings = run_linter([SRC_ROOT])
    assert findings == [], "\n" + format_findings(findings)


def test_benchmarks_are_lint_clean():
    benchmarks = REPO_ROOT / "benchmarks"
    if not benchmarks.is_dir():
        return  # editable installs may not ship the benchmarks
    findings = run_linter([benchmarks])
    assert findings == [], "\n" + format_findings(findings)
