"""The cache/* audit rule family over artifact-store directories."""

from __future__ import annotations

import json

import pytest

from repro.analysis import audit_run_path, audit_store, is_store_dir
from repro.analysis.findings import Severity
from repro.store import (
    ArtifactStore,
    INDEX_NAME,
    artifact_digest,
    blob_relpath,
)


@pytest.fixture
def store(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put(artifact_digest("wcg", {"trace": "a"}), "wcg", b"payload")
    return store


def rules(findings):
    return [finding.rule for finding in findings]


class TestIsStoreDir:
    def test_recognises_a_store(self, store):
        assert is_store_dir(store.root)

    def test_rejects_other_directories(self, tmp_path):
        assert not is_store_dir(tmp_path)
        (tmp_path / INDEX_NAME).write_text("{bad")
        assert not is_store_dir(tmp_path)
        (tmp_path / INDEX_NAME).write_text(json.dumps({"format": "x"}))
        assert not is_store_dir(tmp_path)


class TestAuditStore:
    def test_clean_store_has_no_findings(self, store):
        assert audit_store(store.root) == []

    def test_missing_index(self, tmp_path):
        assert rules(audit_store(tmp_path)) == ["cache/index-parse"]

    def test_corrupt_index(self, store):
        """An unparseable index also strands the blobs as orphans."""
        (store.root / INDEX_NAME).write_text("{bad json")
        assert rules(audit_store(store.root)) == [
            "cache/index-parse",
            "cache/orphan-blob",
        ]

    def test_malformed_entry(self, store):
        """A malformed entry can't vouch for its blob, which is then
        reported as orphaned too."""
        index = store.root / INDEX_NAME
        data = json.loads(index.read_text())
        digest = next(iter(data["entries"]))
        del data["entries"][digest]["sha256"]
        index.write_text(json.dumps(data))
        assert rules(audit_store(store.root)) == [
            "cache/index-entry",
            "cache/orphan-blob",
        ]

    def test_missing_blob(self, store):
        store.blob_path(artifact_digest("wcg", {"trace": "a"})).unlink()
        assert rules(audit_store(store.root)) == ["cache/missing-blob"]

    def test_digest_mismatch(self, store):
        blob = store.blob_path(artifact_digest("wcg", {"trace": "a"}))
        blob.write_bytes(b"tampered")
        findings = audit_store(store.root)
        assert rules(findings) == ["cache/digest-mismatch"]
        assert findings[0].severity is Severity.ERROR
        assert "rebuild" in findings[0].message

    def test_byte_count_mismatch(self, store):
        index = store.root / INDEX_NAME
        data = json.loads(index.read_text())
        digest = next(iter(data["entries"]))
        entry = data["entries"][digest]
        entry["bytes"] = entry["bytes"] + 1
        index.write_text(json.dumps(data))
        # Hash still matches; only the recorded size is wrong.
        assert rules(audit_store(store.root)) == ["cache/index-entry"]

    def test_orphan_blob_is_a_warning(self, store):
        orphan = store.root / blob_relpath("ab" * 32)
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"stray")
        findings = audit_store(store.root)
        assert rules(findings) == ["cache/orphan-blob"]
        assert findings[0].severity is Severity.WARNING


class TestRunPathRouting:
    def test_store_directory_target(self, store):
        assert audit_run_path(store.root) == []

    def test_run_dir_with_embedded_store(self, store, tmp_path):
        blob = store.blob_path(artifact_digest("wcg", {"trace": "a"}))
        blob.write_bytes(b"tampered")
        findings = audit_run_path(store.root.parent)
        assert "cache/digest-mismatch" in rules(findings)

    def test_store_child_suppresses_manifest_missing(self, store):
        """A run directory whose only content is a store is not a
        'run left no record' situation."""
        findings = audit_run_path(store.root.parent)
        assert "manifest/missing" not in rules(findings)

    def test_empty_dir_still_reports_manifest_missing(self, tmp_path):
        assert rules(audit_run_path(tmp_path)) == ["manifest/missing"]
