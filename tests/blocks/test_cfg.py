"""Tests for synthetic control-flow graphs."""

import random

import pytest

from repro.blocks.cfg import BasicBlock, BlockEdge, ProcedureCFG, random_cfg
from repro.errors import ProgramError
from repro.program.procedure import Procedure


def diamond_cfg(sizes=(10, 20, 30, 40)) -> ProcedureCFG:
    """0 -> (1 | 2) -> 3, with block 1 hot and block 2 cold."""
    procedure = Procedure("f", sum(sizes))
    blocks = [BasicBlock(i, size) for i, size in enumerate(sizes)]
    edges = [
        BlockEdge(0, 1, 0.9),
        BlockEdge(0, 2, 0.1),
        BlockEdge(1, 3, 1.0),
        BlockEdge(2, 3, 1.0),
        BlockEdge(3, -1, 1.0),
    ]
    return ProcedureCFG(procedure, blocks, edges)


class TestValidation:
    def test_block_sizes_must_sum_to_procedure(self):
        procedure = Procedure("f", 100)
        blocks = [BasicBlock(0, 60)]
        with pytest.raises(ProgramError):
            ProcedureCFG(procedure, blocks, [])

    def test_blocks_must_be_sequential(self):
        procedure = Procedure("f", 30)
        blocks = [BasicBlock(0, 10), BasicBlock(2, 20)]
        with pytest.raises(ProgramError):
            ProcedureCFG(procedure, blocks, [])

    def test_edge_bounds_checked(self):
        procedure = Procedure("f", 10)
        blocks = [BasicBlock(0, 10)]
        with pytest.raises(ProgramError):
            ProcedureCFG(procedure, blocks, [BlockEdge(0, 5, 1.0)])
        with pytest.raises(ProgramError):
            ProcedureCFG(procedure, blocks, [BlockEdge(7, 0, 1.0)])

    def test_empty_blocks_rejected(self):
        with pytest.raises(ProgramError):
            ProcedureCFG(Procedure("f", 10), [], [])

    def test_block_validation(self):
        with pytest.raises(ProgramError):
            BasicBlock(0, 0)
        with pytest.raises(ProgramError):
            BlockEdge(0, 1, 0.0)


class TestStructure:
    def test_offsets(self):
        cfg = diamond_cfg()
        assert [cfg.offset_of(i) for i in range(4)] == [0, 10, 30, 60]

    def test_sizes(self):
        cfg = diamond_cfg()
        assert cfg.size_of(2) == 30

    def test_successors(self):
        cfg = diamond_cfg()
        assert cfg.successors(0) == [(1, 0.9), (2, 0.1)]
        assert cfg.successors(1) == [(3, 1.0)]


class TestWalk:
    def test_walk_starts_at_entry(self):
        cfg = diamond_cfg()
        path = cfg.walk(random.Random(0))
        assert path[0] == 0

    def test_walk_follows_edges(self):
        cfg = diamond_cfg()
        for seed in range(20):
            path = cfg.walk(random.Random(seed))
            assert path in ([0, 1, 3], [0, 2, 3])

    def test_hot_branch_dominates(self):
        cfg = diamond_cfg()
        rng = random.Random(42)
        hot = sum(1 for _ in range(500) if cfg.walk(rng)[1] == 1)
        assert hot > 400

    def test_walk_bounded_on_loops(self):
        procedure = Procedure("f", 20)
        blocks = [BasicBlock(0, 10), BasicBlock(1, 10)]
        edges = [BlockEdge(0, 1, 1.0), BlockEdge(1, 0, 1.0)]
        cfg = ProcedureCFG(procedure, blocks, edges)
        path = cfg.walk(random.Random(0), max_blocks=50)
        assert len(path) == 50


class TestRandomCFG:
    def test_sizes_partition_procedure(self):
        procedure = Procedure("f", 5000)
        cfg = random_cfg(procedure, seed=1)
        assert sum(b.size for b in cfg.blocks) == 5000

    def test_deterministic(self):
        procedure = Procedure("f", 3000)
        a = random_cfg(procedure, seed=7)
        b = random_cfg(procedure, seed=7)
        assert [blk.size for blk in a.blocks] == [
            blk.size for blk in b.blocks
        ]

    def test_walks_terminate(self):
        procedure = Procedure("f", 2000)
        cfg = random_cfg(procedure, seed=3)
        rng = random.Random(0)
        for _ in range(50):
            path = cfg.walk(rng)
            assert 1 <= len(path) <= 256

    def test_cold_blocks_rarely_executed(self):
        """With cold side blocks, some blocks execute much less often
        than others — the asymmetry block positioning exploits."""
        procedure = Procedure("f", 4000)
        cfg = random_cfg(procedure, seed=11, cold_fraction=0.4)
        rng = random.Random(5)
        counts = [0] * len(cfg)
        for _ in range(300):
            for block in cfg.walk(rng):
                counts[block] += 1
        executed = [c for c in counts if c > 0]
        assert min(counts) < max(executed) / 4

    def test_invalid_cold_fraction(self):
        with pytest.raises(ProgramError):
            random_cfg(Procedure("f", 100), seed=0, cold_fraction=1.0)
