"""Tests for intra-procedure block positioning."""

import random

import pytest

from repro.blocks.cfg import BasicBlock, BlockEdge, ProcedureCFG, random_cfg
from repro.blocks.placement import (
    BlockReorder,
    apply_reorders,
    chain_block_order,
    reorder_all,
)
from repro.blocks.trace import block_transition_graph, blockify_trace
from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate
from repro.errors import PlacementError
from repro.profiles.graph import WeightedGraph
from repro.program.layout import Layout
from repro.program.procedure import Procedure
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


def cold_middle_cfg() -> ProcedureCFG:
    """0 -> (cold 1 | hot skip) -> 2 -> 3; block 1 is a cold island."""
    blocks = [
        BasicBlock(0, 32),
        BasicBlock(1, 96),  # cold
        BasicBlock(2, 32),
        BasicBlock(3, 32),
    ]
    edges = [
        BlockEdge(0, 1, 0.02),
        BlockEdge(0, 2, 0.98),
        BlockEdge(1, 2, 1.0),
        BlockEdge(2, 3, 1.0),
        BlockEdge(3, -1, 1.0),
    ]
    return ProcedureCFG(Procedure("f", 192), blocks, edges)


class TestBlockReorder:
    def test_permutation_required(self):
        cfg = cold_middle_cfg()
        with pytest.raises(PlacementError):
            BlockReorder(cfg, (0, 1, 1, 3))

    def test_entry_must_stay_first(self):
        cfg = cold_middle_cfg()
        with pytest.raises(PlacementError):
            BlockReorder(cfg, (1, 0, 2, 3))

    def test_new_offsets(self):
        cfg = cold_middle_cfg()
        reorder = BlockReorder(cfg, (0, 2, 3, 1))
        assert reorder.new_offset_of(0) == 0
        assert reorder.new_offset_of(2) == 32
        assert reorder.new_offset_of(3) == 64
        assert reorder.new_offset_of(1) == 96

    def test_offset_map(self):
        cfg = cold_middle_cfg()
        reorder = BlockReorder(cfg, (0, 2, 3, 1))
        assert reorder.offset_map() == {0: 0, 128: 32, 160: 64, 32: 96}

    def test_identity(self):
        cfg = cold_middle_cfg()
        assert BlockReorder(cfg, (0, 1, 2, 3)).is_identity


class TestChaining:
    def test_hot_path_made_contiguous(self):
        """The dominant transitions 0->2->3 must chain together,
        pushing the cold block 1 out of the hot path."""
        cfg = cold_middle_cfg()
        transitions = WeightedGraph()
        transitions.add_edge(0, 2, 98.0)
        transitions.add_edge(2, 3, 100.0)
        transitions.add_edge(0, 1, 2.0)
        transitions.add_edge(1, 2, 2.0)
        reorder = chain_block_order(cfg, transitions)
        assert reorder.order[:3] == (0, 2, 3)
        assert reorder.order[3] == 1

    def test_no_transitions_keeps_identity(self):
        cfg = cold_middle_cfg()
        transitions = WeightedGraph()
        for i in range(4):
            transitions.add_node(i)
        reorder = chain_block_order(cfg, transitions)
        assert reorder.order[0] == 0
        assert sorted(reorder.order) == [0, 1, 2, 3]

    def test_deterministic(self):
        cfg = random_cfg(Procedure("f", 2000), seed=4)
        program = Program([cfg.procedure])
        trace = Trace(program, [TraceEvent.full("f", 2000)] * 30)
        refined = blockify_trace(trace, {"f": cfg}, seed=1)
        transitions = block_transition_graph(refined, cfg)
        assert chain_block_order(cfg, transitions) == chain_block_order(
            cfg, transitions
        )


class TestApplyReorders:
    def test_events_get_new_offsets(self):
        cfg = cold_middle_cfg()
        program = Program([cfg.procedure])
        trace = Trace(
            program,
            [
                TraceEvent("f", 0, 32),
                TraceEvent("f", 128, 32),
                TraceEvent("f", 160, 32),
            ],
        )
        reorder = BlockReorder(cfg, (0, 2, 3, 1))
        remapped = apply_reorders(trace, {"f": reorder})
        assert [e.start for e in remapped] == [0, 32, 64]

    def test_non_boundary_event_rejected(self):
        cfg = cold_middle_cfg()
        program = Program([cfg.procedure])
        trace = Trace(program, [TraceEvent("f", 5, 10)])
        reorder = BlockReorder(cfg, (0, 2, 3, 1))
        with pytest.raises(PlacementError):
            apply_reorders(trace, {"f": reorder})

    def test_other_procedures_untouched(self):
        cfg = cold_middle_cfg()
        program = Program(
            [cfg.procedure, Procedure("g", 64)]
        )
        trace = Trace(program, [TraceEvent.full("g", 64)])
        reorder = BlockReorder(cfg, (0, 2, 3, 1))
        remapped = apply_reorders(trace, {"f": reorder})
        assert remapped[0] == TraceEvent("g", 0, 64)


class TestEndToEndBenefit:
    def test_block_positioning_reduces_lines_touched(self):
        """Making the hot path contiguous reduces the cache lines each
        activation touches, and with them the misses."""
        rng = random.Random(0)
        procedures = {f"p{i}": 1536 for i in range(6)}
        program = Program.from_sizes(procedures)
        cfgs = {
            name: random_cfg(
                Procedure(name, size), seed=i, cold_fraction=0.45
            )
            for i, (name, size) in enumerate(procedures.items())
        }
        refs = [
            TraceEvent.full(f"p{rng.randrange(6)}", 1536)
            for _ in range(400)
        ]
        base = Trace(program, refs)
        blocked = blockify_trace(base, cfgs, seed=3)
        reorders = reorder_all(blocked, cfgs)
        repositioned = apply_reorders(blocked, reorders)

        config = CacheConfig(size=2048, line_size=32)
        layout = Layout.default(program)
        before = simulate(layout, blocked, config)
        after = simulate(layout, repositioned, config)
        assert after.misses < before.misses
