"""Tests for trace blockification and block-transition profiling."""

import pytest

from repro.blocks.cfg import BasicBlock, BlockEdge, ProcedureCFG, random_cfg
from repro.blocks.trace import block_transition_graph, blockify_trace
from repro.errors import TraceError
from repro.program.procedure import Procedure
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


@pytest.fixture
def program() -> Program:
    return Program.from_sizes({"f": 100, "g": 50})


@pytest.fixture
def cfg_f() -> ProcedureCFG:
    blocks = [BasicBlock(0, 40), BasicBlock(1, 60)]
    edges = [BlockEdge(0, 1, 1.0), BlockEdge(1, -1, 1.0)]
    return ProcedureCFG(Procedure("f", 100), blocks, edges)


class TestBlockify:
    def test_extents_become_block_extents(self, program, cfg_f):
        trace = Trace(program, [TraceEvent.full("f", 100)])
        refined = blockify_trace(trace, {"f": cfg_f}, seed=0)
        assert list(refined) == [
            TraceEvent("f", 0, 40),
            TraceEvent("f", 40, 60),
        ]

    def test_budget_truncates_walk(self, program, cfg_f):
        trace = Trace(program, [TraceEvent("f", 0, 30)])
        refined = blockify_trace(trace, {"f": cfg_f}, seed=0)
        # 30-byte budget: the 40-byte entry block satisfies it.
        assert list(refined) == [TraceEvent("f", 0, 40)]

    def test_procedures_without_cfg_pass_through(self, program, cfg_f):
        trace = Trace(
            program,
            [TraceEvent.full("g", 50), TraceEvent.full("f", 100)],
        )
        refined = blockify_trace(trace, {"f": cfg_f}, seed=0)
        assert refined[0] == TraceEvent("g", 0, 50)

    def test_unknown_procedure_rejected(self, cfg_f):
        other = Program.from_sizes({"x": 10})
        trace = Trace(other, [TraceEvent.full("x", 10)])
        with pytest.raises(TraceError):
            blockify_trace(trace, {"f": cfg_f}, seed=0)

    def test_mislabeled_cfg_rejected(self, program, cfg_f):
        trace = Trace(program, [TraceEvent.full("g", 50)])
        with pytest.raises(TraceError):
            blockify_trace(trace, {"g": cfg_f}, seed=0)

    def test_deterministic(self, program):
        cfg = random_cfg(Procedure("f", 100), seed=2)
        trace = Trace(program, [TraceEvent.full("f", 100)] * 20)
        a = blockify_trace(trace, {"f": cfg}, seed=9)
        b = blockify_trace(trace, {"f": cfg}, seed=9)
        assert list(a.extent_starts) == list(b.extent_starts)


class TestTransitionGraph:
    def test_counts_adjacent_blocks(self, program, cfg_f):
        trace = Trace(program, [TraceEvent.full("f", 100)] * 3)
        refined = blockify_trace(trace, {"f": cfg_f}, seed=0)
        graph = block_transition_graph(refined, cfg_f)
        # Each activation contributes one 0 -> 1 transition; the
        # 1 -> 0 transition across activations also counts.
        assert graph.weight(0, 1) == 5

    def test_other_procedures_break_adjacency(self, program, cfg_f):
        trace = Trace(
            program,
            [
                TraceEvent("f", 0, 40),
                TraceEvent.full("g", 50),
                TraceEvent("f", 40, 60),
            ],
        )
        graph = block_transition_graph(trace, cfg_f)
        assert graph.weight(0, 1) == 0

    def test_non_boundary_extents_ignored(self, program, cfg_f):
        trace = Trace(program, [TraceEvent("f", 10, 20)] * 2)
        graph = block_transition_graph(trace, cfg_f)
        assert graph.num_edges() == 0

    def test_all_blocks_present_as_nodes(self, program, cfg_f):
        trace = Trace(program, [TraceEvent.full("g", 50)])
        graph = block_transition_graph(trace, cfg_f)
        assert len(graph) == 2
