"""Tests for cache geometry."""

import pytest

from repro.cache.config import PAPER_CACHE, PAPER_CACHE_2WAY, CacheConfig
from repro.errors import ConfigError


class TestValidation:
    def test_paper_cache(self):
        assert PAPER_CACHE.size == 8192
        assert PAPER_CACHE.line_size == 32
        assert PAPER_CACHE.num_lines == 256
        assert PAPER_CACHE.num_sets == 256
        assert PAPER_CACHE.is_direct_mapped

    def test_two_way_paper_cache(self):
        assert PAPER_CACHE_2WAY.associativity == 2
        assert PAPER_CACHE_2WAY.num_sets == 128
        assert not PAPER_CACHE_2WAY.is_direct_mapped

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size": 0},
            {"size": -8},
            {"line_size": 0},
            {"associativity": 0},
            {"instruction_size": 0},
            {"size": 100, "line_size": 32},  # not divisible
            {"size": 64, "line_size": 32, "associativity": 3},
            {"line_size": 30, "instruction_size": 4},
        ],
    )
    def test_invalid_geometry_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CacheConfig(**kwargs)

    def test_instructions_per_line(self):
        assert PAPER_CACHE.instructions_per_line == 8


class TestMapping:
    def test_line_of(self):
        assert PAPER_CACHE.line_of(0) == 0
        assert PAPER_CACHE.line_of(31) == 0
        assert PAPER_CACHE.line_of(32) == 1

    def test_line_of_negative_rejected(self):
        with pytest.raises(ConfigError):
            PAPER_CACHE.line_of(-1)

    def test_set_of_wraps(self):
        assert PAPER_CACHE.set_of(8192) == 0
        assert PAPER_CACHE.set_of(8192 + 32) == 1

    def test_set_of_two_way(self):
        # 128 sets: line 128 maps back to set 0.
        assert PAPER_CACHE_2WAY.set_of_line(128) == 0
        assert PAPER_CACHE_2WAY.set_of_line(129) == 1

    def test_set_of_line_negative_rejected(self):
        with pytest.raises(ConfigError):
            PAPER_CACHE.set_of_line(-1)

    def test_lines_spanned(self):
        assert list(PAPER_CACHE.lines_spanned(0, 32)) == [0]
        assert list(PAPER_CACHE.lines_spanned(0, 33)) == [0, 1]
        assert list(PAPER_CACHE.lines_spanned(31, 2)) == [0, 1]
        assert list(PAPER_CACHE.lines_spanned(64, 64)) == [2, 3]

    def test_lines_spanned_empty(self):
        assert list(PAPER_CACHE.lines_spanned(100, 0)) == []

    def test_lines_spanned_negative_rejected(self):
        with pytest.raises(ConfigError):
            PAPER_CACHE.lines_spanned(0, -1)
