"""Tests for the reference direct-mapped cache model."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.direct import DirectMappedCache
from repro.errors import ConfigError


@pytest.fixture
def cache() -> DirectMappedCache:
    # 4 lines of 32 bytes.
    return DirectMappedCache(CacheConfig(size=128, line_size=32))


class TestBasics:
    def test_requires_direct_mapped(self):
        with pytest.raises(ConfigError):
            DirectMappedCache(
                CacheConfig(size=128, line_size=32, associativity=2)
            )

    def test_cold_miss(self, cache):
        assert cache.touch(0) is True

    def test_hit_after_fill(self, cache):
        cache.touch(0)
        assert cache.touch(0) is False

    def test_conflict_between_aliasing_lines(self, cache):
        cache.touch(0)
        assert cache.touch(4) is True  # same set (4 % 4 == 0)
        assert cache.touch(0) is True  # evicted

    def test_distinct_sets_coexist(self, cache):
        cache.touch(0)
        cache.touch(1)
        cache.touch(2)
        cache.touch(3)
        assert cache.touch(0) is False
        assert cache.touch(3) is False

    def test_counters(self, cache):
        for line in [0, 1, 0, 4, 0]:
            cache.touch(line)
        assert cache.accesses == 5
        assert cache.misses == 4  # hit only on the second touch of 0


class TestRun:
    def test_run_counts(self, cache):
        stats = cache.run([0, 0, 4, 4, 0])
        assert stats.line_accesses == 5
        assert stats.misses == 3
        assert stats.fetches == 5

    def test_run_with_explicit_fetches(self, cache):
        stats = cache.run([0, 0], fetches=16)
        assert stats.fetches == 16
        assert stats.miss_rate == 1 / 16

    def test_flush_invalidates(self, cache):
        cache.touch(0)
        cache.flush()
        assert cache.touch(0) is True

    def test_contents(self, cache):
        cache.touch(0)
        cache.touch(5)
        assert cache.contents() == {0: 0, 1: 5}
