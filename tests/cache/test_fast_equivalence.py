"""Property tests: the vectorized simulator is exact.

The fast path must be bit-exact with the reference model for any
stream and any direct-mapped geometry — this is the foundation every
experiment's miss numbers rest on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.cache.direct import DirectMappedCache
from repro.cache.fast import count_direct_mapped_misses, simulate_direct_mapped

GEOMETRIES = st.sampled_from(
    [
        CacheConfig(size=64, line_size=32),
        CacheConfig(size=128, line_size=32),
        CacheConfig(size=256, line_size=16),
        CacheConfig(size=1024, line_size=64),
        CacheConfig(size=8192, line_size=32),
    ]
)


@given(
    config=GEOMETRIES,
    lines=st.lists(st.integers(0, 5000), max_size=500),
)
@settings(max_examples=200)
def test_fast_matches_reference(config, lines):
    stream = np.asarray(lines, dtype=np.int64)
    fast = count_direct_mapped_misses(stream, config)
    reference = DirectMappedCache(config).run(lines)
    assert fast == reference.misses


@given(
    config=GEOMETRIES,
    lines=st.lists(st.integers(0, 50), min_size=1, max_size=300),
)
@settings(max_examples=100)
def test_fast_matches_reference_dense_aliasing(config, lines):
    """Small line universe forces heavy set reuse and conflicts."""
    stream = np.asarray(lines, dtype=np.int64)
    fast = count_direct_mapped_misses(stream, config)
    reference = DirectMappedCache(config).run(lines)
    assert fast == reference.misses


def test_empty_stream():
    config = CacheConfig(size=128, line_size=32)
    assert count_direct_mapped_misses(np.empty(0, dtype=np.int64), config) == 0


def test_all_unique_lines_all_miss():
    config = CacheConfig(size=128, line_size=32)
    stream = np.arange(100, dtype=np.int64)
    assert count_direct_mapped_misses(stream, config) == 100


def test_repeated_line_misses_once():
    config = CacheConfig(size=128, line_size=32)
    stream = np.zeros(50, dtype=np.int64)
    assert count_direct_mapped_misses(stream, config) == 1


def test_simulate_direct_mapped_stats():
    config = CacheConfig(size=128, line_size=32)
    stream = np.asarray([0, 4, 0, 4], dtype=np.int64)
    stats = simulate_direct_mapped(stream, fetches=32, config=config)
    assert stats.misses == 4
    assert stats.line_accesses == 4
    assert stats.fetches == 32


def test_requires_direct_mapped():
    import pytest

    from repro.errors import ConfigError

    config = CacheConfig(size=128, line_size=32, associativity=2)
    with pytest.raises(ConfigError):
        count_direct_mapped_misses(np.asarray([0, 1]), config)
