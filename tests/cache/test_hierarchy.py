"""Tests for the multi-level cache hierarchy model."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.direct import DirectMappedCache
from repro.cache.hierarchy import (
    direct_mapped_miss_flags,
    lru_miss_flags,
    miss_flags,
    simulate_hierarchy,
)
from repro.cache.setassoc import SetAssociativeCache
from repro.errors import ConfigError
from repro.program.layout import Layout
from repro.program.program import Program
from tests.conftest import full_trace


@pytest.fixture
def l1() -> CacheConfig:
    return CacheConfig(size=128, line_size=32)  # 4 lines


@pytest.fixture
def l2() -> CacheConfig:
    return CacheConfig(size=512, line_size=32, associativity=2)


class TestMissFlags:
    def test_flags_match_stateful_model_direct(self, l1):
        lines = np.asarray([0, 4, 0, 1, 4, 4, 0], dtype=np.int64)
        flags = direct_mapped_miss_flags(lines, l1)
        cache = DirectMappedCache(l1)
        expected = [cache.touch(int(line)) for line in lines]
        assert flags.tolist() == expected

    def test_flags_match_stateful_model_lru(self, l2):
        lines = np.asarray([0, 8, 16, 0, 8, 16, 0], dtype=np.int64)
        flags = lru_miss_flags(lines, l2)
        cache = SetAssociativeCache(l2)
        expected = [cache.touch(int(line)) for line in lines]
        assert flags.tolist() == expected

    def test_empty_stream(self, l1):
        assert len(direct_mapped_miss_flags(np.empty(0, int), l1)) == 0

    def test_dispatch(self, l1, l2):
        lines = np.asarray([0, 1, 0], dtype=np.int64)
        assert miss_flags(lines, l1).tolist() == [True, True, False]
        assert miss_flags(lines, l2).tolist() == [True, True, False]

    def test_direct_flags_reject_assoc(self, l2):
        with pytest.raises(ConfigError):
            direct_mapped_miss_flags(np.asarray([0]), l2)


class TestHierarchy:
    @pytest.fixture
    def setup(self):
        program = Program.from_sizes({"a": 128, "b": 128, "c": 128})
        layout = Layout.default(program)
        trace = full_trace(
            program, ["a", "b", "c", "a", "b", "c", "a"]
        )
        return program, layout, trace

    def test_l2_sees_only_l1_misses(self, setup, l1, l2):
        _, layout, trace = setup
        l1_stats, l2_stats = simulate_hierarchy(layout, trace, [l1, l2])
        assert l2_stats.line_accesses == l1_stats.misses
        assert l2_stats.misses <= l1_stats.misses

    def test_l2_filters_misses(self, setup, l1, l2):
        """The working set exceeds L1 (384 B > 128 B) but fits L2, so
        after the cold pass L2 absorbs the L1 conflict misses."""
        _, layout, trace = setup
        _, l2_stats = simulate_hierarchy(layout, trace, [l1, l2])
        # Only the 12 cold lines miss in L2; repeats hit.
        assert l2_stats.misses == 12

    def test_single_level_matches_simulate(self, setup, l1):
        from repro.cache.simulator import simulate

        _, layout, trace = setup
        (stats,) = simulate_hierarchy(layout, trace, [l1])
        assert stats == simulate(layout, trace, l1)

    def test_fetch_count_constant_across_levels(self, setup, l1, l2):
        _, layout, trace = setup
        l1_stats, l2_stats = simulate_hierarchy(layout, trace, [l1, l2])
        assert l1_stats.fetches == l2_stats.fetches

    def test_three_levels(self, setup, l1, l2):
        _, layout, trace = setup
        l3 = CacheConfig(size=4096, line_size=32, associativity=4)
        stats = simulate_hierarchy(layout, trace, [l1, l2, l3])
        assert len(stats) == 3
        assert (
            stats[2].misses <= stats[1].misses <= stats[0].misses
        )

    def test_mismatched_line_sizes_rejected(self, setup, l1):
        _, layout, trace = setup
        with pytest.raises(ConfigError):
            simulate_hierarchy(
                layout,
                trace,
                [l1, CacheConfig(size=512, line_size=64)],
            )

    def test_empty_levels_rejected(self, setup):
        _, layout, trace = setup
        with pytest.raises(ConfigError):
            simulate_hierarchy(layout, trace, [])

    def test_placement_also_helps_l2(self):
        """A layout that removes L1 conflicts shrinks the L2 reference
        stream — the cross-layer coupling §8 points at."""
        program = Program.from_sizes({"a": 128, "b": 128})
        conflicting = Layout(program, {"a": 0, "b": 128})
        trace = full_trace(program, ["a", "b"] * 20)
        l1 = CacheConfig(size=128, line_size=32)
        l2 = CacheConfig(size=1024, line_size=32, associativity=2)
        # Both procedures alias fully in the 128-byte L1 either way
        # (each is a full cache); separate them with a bigger L1.
        big_l1 = CacheConfig(size=256, line_size=32)
        separated = Layout(program, {"a": 0, "b": 128})
        aliased = Layout(program, {"a": 0, "b": 256})
        good = simulate_hierarchy(separated, trace, [big_l1, l2])
        bad = simulate_hierarchy(aliased, trace, [big_l1, l2])
        assert good[0].misses < bad[0].misses
        assert good[1].line_accesses < bad[1].line_accesses
