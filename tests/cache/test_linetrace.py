"""Tests for line-stream derivation from layouts and traces."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.linetrace import line_stream
from repro.program.layout import Layout
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)


@pytest.fixture
def program() -> Program:
    return Program.from_sizes({"a": 64, "b": 100})


class TestExpansion:
    def test_full_extent_lines(self, program, config):
        layout = Layout.default(program)
        trace = Trace(program, [TraceEvent.full("a", 64)])
        stream = line_stream(layout, trace, config)
        assert list(stream.lines) == [0, 1]

    def test_offset_extent(self, program, config):
        layout = Layout.default(program)
        # 'b' starts at 64 (line 2); extent [10, 40) within b covers
        # bytes [74, 104) -> lines 2..3.
        trace = Trace(program, [TraceEvent("b", 10, 30)])
        stream = line_stream(layout, trace, config)
        assert list(stream.lines) == [2, 3]

    def test_multiple_events_concatenate(self, program, config):
        layout = Layout.default(program)
        trace = Trace(
            program,
            [TraceEvent.full("a", 64), TraceEvent("b", 0, 10)],
        )
        stream = line_stream(layout, trace, config)
        assert list(stream.lines) == [0, 1, 2]

    def test_unaligned_procedure_start(self, program, config):
        layout = Layout(program, {"a": 30, "b": 200})
        trace = Trace(program, [TraceEvent("a", 0, 4)])
        stream = line_stream(layout, trace, config)
        assert list(stream.lines) == [0, 1]

    def test_empty_trace(self, program, config):
        layout = Layout.default(program)
        trace = Trace(program, [])
        stream = line_stream(layout, trace, config)
        assert len(stream) == 0
        assert stream.fetches == 0


class TestFetchAccounting:
    def test_fetches_from_bytes(self, program, config):
        layout = Layout.default(program)
        trace = Trace(program, [TraceEvent.full("a", 64)])
        stream = line_stream(layout, trace, config)
        assert stream.fetches == 16  # 64 bytes / 4-byte instructions

    def test_tiny_extent_counts_one_fetch(self, program, config):
        layout = Layout.default(program)
        trace = Trace(program, [TraceEvent("a", 0, 2)])
        stream = line_stream(layout, trace, config)
        assert stream.fetches == 1

    def test_fetches_sum_over_events(self, program, config):
        layout = Layout.default(program)
        trace = Trace(
            program, [TraceEvent("a", 0, 8), TraceEvent("b", 0, 12)]
        )
        stream = line_stream(layout, trace, config)
        assert stream.fetches == 2 + 3


class TestLayoutSensitivity:
    def test_different_layouts_different_lines(self, program, config):
        trace = Trace(program, [TraceEvent.full("a", 64)])
        default = line_stream(Layout.default(program), trace, config)
        moved = line_stream(
            Layout(program, {"a": 256, "b": 0}), trace, config
        )
        assert list(default.lines) == [0, 1]
        assert list(moved.lines) == [8, 9]
