"""Cross-object consistency checks for line-stream derivation."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.linetrace import line_stream
from repro.program.layout import Layout
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


def test_program_mismatch_rejected():
    program_a = Program.from_sizes({"a": 64})
    program_b = Program.from_sizes({"a": 64, "b": 64})
    layout = Layout.default(program_b)
    trace = Trace(program_a, [TraceEvent.full("a", 64)])
    with pytest.raises(ValueError):
        line_stream(layout, trace, CacheConfig(size=128, line_size=32))


def test_equal_value_programs_accepted():
    """Two distinct Program objects with identical contents are the
    same program for simulation purposes."""
    program_a = Program.from_sizes({"a": 64})
    program_b = Program.from_sizes({"a": 64})
    layout = Layout.default(program_b)
    trace = Trace(program_a, [TraceEvent.full("a", 64)])
    stream = line_stream(layout, trace, CacheConfig(size=128, line_size=32))
    assert list(stream.lines) == [0, 1]
