"""Tests for the set-associative LRU cache model."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.direct import DirectMappedCache
from repro.cache.setassoc import SetAssociativeCache


@pytest.fixture
def two_way() -> SetAssociativeCache:
    # 4 lines, 2 ways -> 2 sets.
    return SetAssociativeCache(
        CacheConfig(size=128, line_size=32, associativity=2)
    )


class TestLRU:
    def test_two_lines_coexist_in_a_set(self, two_way):
        two_way.touch(0)
        two_way.touch(2)  # same set (2 % 2 == 0), second way
        assert two_way.touch(0) is False
        assert two_way.touch(2) is False

    def test_third_line_evicts_lru(self, two_way):
        two_way.touch(0)
        two_way.touch(2)
        two_way.touch(0)  # 0 is now MRU; 2 is LRU
        two_way.touch(4)  # evicts 2
        assert two_way.touch(0) is False
        assert two_way.touch(2) is True

    def test_hit_promotes_to_mru(self, two_way):
        two_way.touch(0)
        two_way.touch(2)
        two_way.touch(2)  # promote 2 (already MRU; exercise the path)
        two_way.touch(0)  # promote 0
        two_way.touch(4)  # evicts 2, not 0
        assert two_way.touch(0) is False

    def test_contents_mru_first(self, two_way):
        two_way.touch(0)
        two_way.touch(2)
        assert two_way.contents()[0] == (2, 0)

    def test_flush(self, two_way):
        two_way.touch(0)
        two_way.flush()
        assert two_way.touch(0) is True

    def test_run_fetch_accounting(self, two_way):
        stats = two_way.run([0, 0, 1], fetches=24)
        assert stats.fetches == 24
        assert stats.misses == 2


class TestDegenerateDirectMapped:
    def test_one_way_matches_direct_mapped(self):
        config = CacheConfig(size=256, line_size=32, associativity=1)
        stream = [0, 8, 0, 8, 1, 2, 3, 1, 9, 1, 0, 16, 8, 0]
        lru = SetAssociativeCache(config).run(stream)
        direct = DirectMappedCache(config).run(stream)
        assert lru.misses == direct.misses
        assert lru.line_accesses == direct.line_accesses


class TestAssociativityBenefit:
    def test_two_way_resolves_pingpong(self):
        """The canonical case: two aliasing lines thrash a DM cache but
        coexist in a 2-way cache."""
        stream = [0, 8, 0, 8, 0, 8, 0, 8]
        dm = DirectMappedCache(
            CacheConfig(size=256, line_size=32)
        ).run(stream)
        sa = SetAssociativeCache(
            CacheConfig(size=256, line_size=32, associativity=2)
        ).run(stream)
        assert dm.misses == 8
        assert sa.misses == 2
