"""Associativity-1 routing: the set-associative entry points must
dispatch to the vectorized direct-mapped kernel, bit-exactly with the
scalar models they shortcut."""

import random

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.direct import DirectMappedCache
from repro.cache.hierarchy import (
    direct_mapped_miss_flags,
    lru_miss_flags,
)
from repro.cache.setassoc import (
    SetAssociativeCache,
    simulate_set_associative,
)
from repro.obs import runtime as obs_runtime


def random_stream(seed: int, n: int = 400, lines: int = 64) -> list[int]:
    rng = random.Random(seed)
    return [rng.randrange(lines) for _ in range(n)]


@pytest.fixture
def assoc1() -> CacheConfig:
    return CacheConfig(size=256, line_size=32, associativity=1)


@pytest.fixture
def assoc2() -> CacheConfig:
    return CacheConfig(size=256, line_size=32, associativity=2)


@pytest.fixture
def fresh_obs():
    previous = obs_runtime.current()
    state = obs_runtime.enable()
    try:
        yield state
    finally:
        obs_runtime.restore(previous)


class TestSimulateSetAssociative:
    @pytest.mark.parametrize("seed", range(10))
    def test_assoc1_bit_exact_with_scalar_models(self, assoc1, seed):
        stream = random_stream(seed)
        routed = simulate_set_associative(stream, None, assoc1)
        direct = DirectMappedCache(assoc1).run(stream)
        lru = SetAssociativeCache(assoc1).run(stream)
        assert routed == direct == lru

    def test_assoc1_takes_the_vectorized_path(self, assoc1, fresh_obs):
        simulate_set_associative([0, 1, 0], None, assoc1)
        snapshot = fresh_obs.registry.snapshot()
        assert snapshot["cache.sim.fast_calls"]["value"] == 1
        assert "cache.sim.lru_runs" not in snapshot

    def test_assoc2_keeps_the_lru_loop(self, assoc2, fresh_obs):
        simulate_set_associative([0, 1, 0], None, assoc2)
        snapshot = fresh_obs.registry.snapshot()
        assert snapshot["cache.sim.lru_runs"]["value"] == 1
        assert "cache.sim.fast_calls" not in snapshot

    def test_fetches_default_is_one_per_access(self, assoc1):
        stats = simulate_set_associative([0, 0, 1], None, assoc1)
        assert stats.fetches == 3
        assert stats.line_accesses == 3

    def test_explicit_fetches_preserved(self, assoc1, assoc2):
        for config in (assoc1, assoc2):
            stats = simulate_set_associative([0, 0, 1], 24, config)
            assert stats.fetches == 24

    def test_empty_stream(self, assoc1):
        stats = simulate_set_associative([], None, assoc1)
        assert stats.misses == 0
        assert stats.line_accesses == 0

    def test_assoc2_results_unchanged(self, assoc2):
        stream = random_stream(3)
        routed = simulate_set_associative(stream, None, assoc2)
        scalar = SetAssociativeCache(assoc2).run(stream)
        assert routed == scalar


class TestLruMissFlags:
    @pytest.mark.parametrize("seed", range(10))
    def test_assoc1_flags_match_scalar_per_access(self, assoc1, seed):
        stream = np.asarray(random_stream(seed), dtype=np.int64)
        flags = lru_miss_flags(stream, assoc1)
        cache = SetAssociativeCache(assoc1)
        scalar = np.asarray(
            [cache.touch(int(line)) for line in stream], dtype=bool
        )
        assert np.array_equal(flags, scalar)

    def test_assoc1_delegates_to_direct_mapped_flags(self, assoc1):
        stream = np.asarray(random_stream(1), dtype=np.int64)
        assert np.array_equal(
            lru_miss_flags(stream, assoc1),
            direct_mapped_miss_flags(stream, assoc1),
        )

    def test_assoc2_flags_unchanged(self, assoc2):
        stream = np.asarray(random_stream(2), dtype=np.int64)
        flags = lru_miss_flags(stream, assoc2)
        cache = SetAssociativeCache(assoc2)
        scalar = np.asarray(
            [cache.touch(int(line)) for line in stream], dtype=bool
        )
        assert np.array_equal(flags, scalar)
