"""Tests for the top-level simulate() facade."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate, simulate_stream
from repro.cache.linetrace import line_stream
from repro.errors import ConfigError
from repro.program.layout import Layout
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


@pytest.fixture
def setup():
    program = Program.from_sizes({"a": 128, "b": 128, "c": 64})
    layout = Layout.default(program)
    trace = Trace(
        program,
        [
            TraceEvent.full("a", 128),
            TraceEvent.full("b", 128),
            TraceEvent.full("a", 128),
            TraceEvent.full("c", 64),
        ],
    )
    config = CacheConfig(size=128, line_size=32)
    return program, layout, trace, config


class TestEngines:
    def test_fast_and_reference_agree(self, setup):
        _, layout, trace, config = setup
        fast = simulate(layout, trace, config, engine="fast")
        reference = simulate(layout, trace, config, engine="reference")
        assert fast == reference

    def test_lru_with_associativity_one_agrees(self, setup):
        _, layout, trace, config = setup
        fast = simulate(layout, trace, config, engine="fast")
        lru = simulate(layout, trace, config, engine="lru")
        assert fast.misses == lru.misses

    def test_auto_picks_fast_for_direct_mapped(self, setup):
        _, layout, trace, config = setup
        auto = simulate(layout, trace, config)
        fast = simulate(layout, trace, config, engine="fast")
        assert auto == fast

    def test_auto_handles_set_associative(self, setup):
        _, layout, trace, _ = setup
        config = CacheConfig(size=128, line_size=32, associativity=2)
        stats = simulate(layout, trace, config)
        assert stats.misses > 0

    def test_unknown_engine_rejected(self, setup):
        _, layout, trace, config = setup
        with pytest.raises(ConfigError):
            simulate(layout, trace, config, engine="nope")


class TestSemantics:
    def test_thrashing_layout_worse_than_separated(self, setup):
        """a and b alias fully in a 128-byte cache when placed one
        cache-size apart, and the trace alternates between them."""
        program, _, trace, config = setup
        aliased = Layout(program, {"a": 0, "b": 128, "c": 256})
        # In a 128-byte cache both a and b cover all 4 lines either
        # way; use a bigger cache to separate them.
        big = CacheConfig(size=256, line_size=32)
        separated = Layout(program, {"a": 0, "b": 128, "c": 256})
        conflicting = Layout(program, {"a": 0, "b": 256, "c": 512})
        good = simulate(separated, trace, big)
        bad = simulate(conflicting, trace, big)
        assert bad.misses > good.misses

    def test_stream_reuse(self, setup):
        _, layout, trace, config = setup
        stream = line_stream(layout, trace, config)
        direct = simulate(layout, trace, config)
        via_stream = simulate_stream(stream, config)
        assert direct == via_stream
