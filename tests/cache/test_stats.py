"""Tests for MissStats."""

import pytest

from repro.cache.stats import MissStats


class TestValidation:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MissStats(fetches=-1, line_accesses=0, misses=0)

    def test_misses_cannot_exceed_accesses(self):
        with pytest.raises(ValueError):
            MissStats(fetches=10, line_accesses=5, misses=6)


class TestDerived:
    def test_miss_rate(self):
        stats = MissStats(fetches=200, line_accesses=20, misses=10)
        assert stats.miss_rate == 0.05

    def test_miss_ratio(self):
        stats = MissStats(fetches=200, line_accesses=20, misses=10)
        assert stats.miss_ratio == 0.5

    def test_hits(self):
        stats = MissStats(fetches=200, line_accesses=20, misses=10)
        assert stats.hits == 10

    def test_empty_stream(self):
        stats = MissStats(fetches=0, line_accesses=0, misses=0)
        assert stats.miss_rate == 0.0
        assert stats.miss_ratio == 0.0

    def test_merged(self):
        a = MissStats(fetches=100, line_accesses=10, misses=5)
        b = MissStats(fetches=50, line_accesses=8, misses=1)
        merged = a.merged(b)
        assert merged.fetches == 150
        assert merged.line_accesses == 18
        assert merged.misses == 6

    def test_str_mentions_miss_rate(self):
        stats = MissStats(fetches=100, line_accesses=10, misses=5)
        assert "5/10" in str(stats)
