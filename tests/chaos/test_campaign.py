"""Campaign driver: point selection, the crash/verify loop, findings.

Uses a synthetic batch (no workloads) so the end-to-end campaign runs
in well under a second; CI's chaos job exercises the real table1 run.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import sites
from repro.chaos.campaign import (
    FINDINGS_FORMAT,
    CampaignResult,
    CrashPoint,
    run_campaign,
    select_crash_points,
    write_findings,
)
from repro.errors import ChaosError
from repro.runner import Batch, TaskSpec
from repro.store import ArtifactStore


@pytest.fixture(autouse=True)
def clean_hook():
    sites.uninstall()
    yield
    sites.uninstall()


def batch_factory(store: ArtifactStore) -> Batch:
    """Three tasks that exercise the store, artifacts and journal."""
    tasks = []
    for index in range(1, 4):
        def body(env, index=index, store=store):
            def build():
                return {"value": index * 10}

            # A raw put keeps the codec surface out of the picture but
            # still drives the blob + index write sites.
            store.put(f"{index:064x}", "wcg", b"x" * index)
            return build()

        tasks.append(
            TaskSpec(
                key=f"t:{index}",
                kind="unit",
                run=body,
                artifact=f"t{index}.json",
            )
        )

    def render(results):
        return "\n".join(
            f"{key}={results[key]['value']}" for key in sorted(results)
        )

    return Batch(
        command="chaos-test",
        grid_id="chaos-grid",
        tasks=tuple(tasks),
        render=render,
    )


EVENTS = [
    ("store.blob", "data"),
    ("store.blob", "data"),
    ("store.index", "replace"),
    ("runner.journal", "data"),
    ("runner.journal", "data"),
    ("obs.sink", "data"),
]


class TestSelectCrashPoints:
    def test_deterministic_for_seed(self):
        first = select_crash_points(EVENTS, 4, seed=7)
        second = select_crash_points(EVENTS, 4, seed=7)
        assert first == second

    def test_seed_changes_selection(self):
        everything = {
            select_crash_points(EVENTS, 3, seed=seed)
            for seed in range(20)
        }
        assert len(everything) > 1

    def test_stratified_across_families(self):
        points = select_crash_points(EVENTS, 3, seed=0)
        families = {cp.site.split(".")[0] for cp in points}
        # One pick per family before any family gets a second.
        assert families == {"store", "runner", "obs"}

    def test_occurrences_distinct_per_site(self):
        points = select_crash_points(EVENTS, len(EVENTS), seed=3)
        assert len(points) == len(EVENTS)
        assert len({(cp.site, cp.point, cp.occurrence)
                    for cp in points}) == len(EVENTS)

    def test_errors_rotate(self):
        points = select_crash_points(
            EVENTS, 4, seed=0, errors=("eio", "kill")
        )
        assert [cp.error for cp in points] == [
            "eio", "kill", "eio", "kill"
        ]

    def test_fewer_events_than_points(self):
        points = select_crash_points(EVENTS[:2], 10, seed=0)
        assert len(points) == 2

    def test_zero_points_rejected(self):
        with pytest.raises(ChaosError, match="point"):
            select_crash_points(EVENTS, 0, seed=0)

    def test_unknown_error_kind_rejected(self):
        with pytest.raises(ChaosError, match="cosmic"):
            select_crash_points(EVENTS, 1, seed=0, errors=("cosmic",))

    def test_empty_errors_rejected(self):
        with pytest.raises(ChaosError, match="error kind"):
            select_crash_points(EVENTS, 1, seed=0, errors=())

    def test_label_is_stable(self):
        cp = CrashPoint(index=0, site="store.index", point="replace",
                        occurrence=2, error="torn")
        assert cp.label == "store.index/replace#2:torn"


class TestRunCampaign:
    def test_synthetic_campaign_honours_contract(self, tmp_path):
        lines: list[str] = []
        result = run_campaign(
            batch_factory,
            tmp_path / "work",
            command="chaos-test",
            points=8,
            seed=11,
            echo=lines.append,
        )
        assert result.ok, [f.message for f in result.findings]
        assert len(result.points) == 8
        assert result.crashed + result.degraded + result.clean == 8
        # kill/crash/torn points at fatal sites actually crashed runs.
        assert result.crashed >= 1
        assert result.baseline_report == "t:1=10\nt:2=20\nt:3=30"
        assert any("baseline" in line for line in lines)

    def test_point_dirs_removed_unless_keep(self, tmp_path):
        work = tmp_path / "work"
        run_campaign(
            batch_factory, work, command="chaos-test",
            points=2, seed=1,
        )
        assert not list(work.glob("point-*"))
        run_campaign(
            batch_factory, work, command="chaos-test",
            points=2, seed=1, keep=True,
        )
        assert len(list(work.glob("point-*"))) == 2

    def test_findings_artifact_shape(self, tmp_path):
        result = run_campaign(
            batch_factory, tmp_path / "work",
            command="chaos-test", points=3, seed=5,
        )
        out = tmp_path / "findings.json"
        write_findings(result, out)
        payload = json.loads(out.read_text())
        assert payload["format"] == FINDINGS_FORMAT
        assert payload["seed"] == 5
        assert payload["summary"]["points"] == 3
        assert payload["summary"]["ok"] is True
        assert payload["findings"] == []
        assert len(payload["points"]) == 3
        assert {"index", "site", "point", "occurrence", "error"} <= set(
            payload["points"][0]
        )

    def test_result_ok_reflects_findings(self):
        clean = CampaignResult(
            command="c", seed=0, baseline_report="r", points=(),
            crashed=0, degraded=0, clean=0, findings=(),
        )
        assert clean.ok
