"""Injected io faults: the documented post-state of every surface.

Each test pins one cell of the crash matrix in
``docs/crash-consistency.md``: inject a fault at a named write site,
then assert exactly what the matrix guarantees survives on disk.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.chaos import sites
from repro.chaos.plan import IoFaultPlan, IoInjection
from repro.errors import (
    ObservabilityError,
    PerfError,
    RunnerError,
    SimulatedCrash,
    SimulatedKill,
)
from repro.io import atomic_write_text
from repro.obs.perf.history import append_record
from repro.obs.sinks import JsonlSink
from repro.runner.journal import CheckpointJournal, load_journal
from repro.store import ArtifactStore, artifact_digest


@pytest.fixture(autouse=True)
def clean_hook():
    sites.uninstall()
    yield
    sites.uninstall()


def inject(site: str, point: str, error: str, **kwargs) -> IoFaultPlan:
    plan = IoFaultPlan(
        [IoInjection(site=site, point=point, error=error, **kwargs)]
    )
    sites.install(plan)
    return plan


def tmp_files(directory) -> list[str]:
    return sorted(p.name for p in directory.rglob("*.tmp"))


class TestAtomicWriter:
    """Rows 1-3 of the matrix: the atomic-replace surfaces."""

    @pytest.mark.parametrize("point", ["before", "data", "fsync"])
    @pytest.mark.parametrize("error", ["enospc", "eio"])
    def test_disk_error_leaves_no_temp(self, tmp_path, point, error):
        inject("io.atomic_writer", point, error)
        with pytest.raises(OSError):
            atomic_write_text(tmp_path / "out.json", "{}\n")
        assert not (tmp_path / "out.json").exists()
        assert tmp_files(tmp_path) == []

    def test_failed_replace_unlinks_temp(self, tmp_path, monkeypatch):
        """The rename itself failing must clean up too, not only the
        faults injected before it."""
        real_replace = os.replace

        def failing_replace(src, dst):
            raise OSError("injected rename failure")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="rename"):
            atomic_write_text(tmp_path / "out.json", "{}\n")
        monkeypatch.setattr(os, "replace", real_replace)
        assert not (tmp_path / "out.json").exists()
        assert tmp_files(tmp_path) == []

    def test_kill_unwinds_and_cleans(self, tmp_path):
        inject("io.atomic_writer", "data", "kill")
        with pytest.raises(SimulatedKill):
            atomic_write_text(tmp_path / "out.json", "{}\n")
        assert not (tmp_path / "out.json").exists()
        assert tmp_files(tmp_path) == []

    def test_crash_strands_temp(self, tmp_path):
        """A power cut gets no cleanup: the temp file survives for the
        resume sweep / gc to reclaim."""
        inject("io.atomic_writer", "data", "crash")
        with pytest.raises(SimulatedCrash):
            atomic_write_text(tmp_path / "out.json", "payload\n")
        assert not (tmp_path / "out.json").exists()
        (stranded,) = tmp_path.rglob("*.tmp")
        assert stranded.read_text() == "payload\n"

    def test_torn_strands_half_written_temp(self, tmp_path):
        inject("io.atomic_writer", "data", "torn")
        with pytest.raises(SimulatedCrash):
            atomic_write_text(tmp_path / "out.json", "0123456789")
        assert not (tmp_path / "out.json").exists()
        (stranded,) = tmp_path.rglob("*.tmp")
        assert stranded.read_text() == "01234"

    def test_crash_after_replace_keeps_target(self, tmp_path):
        """``after`` models a crash the writer never observed: the
        rename already committed, so the new content is durable."""
        inject("io.atomic_writer", "after", "crash")
        with pytest.raises(SimulatedCrash):
            atomic_write_text(tmp_path / "out.json", "committed\n")
        assert (tmp_path / "out.json").read_text() == "committed\n"

    def test_old_content_survives_failed_overwrite(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "old\n")
        inject("io.atomic_writer", "fsync", "eio")
        with pytest.raises(OSError):
            atomic_write_text(target, "new\n")
        assert target.read_text() == "old\n"


class TestJournal:
    def test_disk_error_surfaces_as_runner_error(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "checkpoint.jsonl")
        journal.append({"type": "batch", "n": 1})
        inject("runner.journal", "data", "eio")
        with pytest.raises(RunnerError, match="journal"):
            journal.append({"type": "task", "key": "t:1"})
        journal.close()

    def test_torn_append_leaves_replayable_prefix(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        journal = CheckpointJournal(path)
        journal.append(
            {"type": "batch", "format": "repro/checkpoint", "grid": "g"}
        )
        journal.append({"type": "task", "key": "t:1", "status": "ok"})
        inject("runner.journal", "data", "torn")
        with pytest.raises(SimulatedCrash):
            journal.append({"type": "task", "key": "t:2", "status": "ok"})
        journal.close()
        state = load_journal(path)
        assert state.truncated
        assert set(state.completed()) == {"t:1"}


class TestSink:
    def test_disk_error_closes_sink(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl")
        sink.emit({"type": "span", "n": 1})
        inject("obs.sink", "data", "eio")
        with pytest.raises(ObservabilityError):
            sink.emit({"type": "span", "n": 2})
        assert sink.closed
        with pytest.raises(ObservabilityError, match="closed"):
            sink.emit({"type": "span", "n": 3})

    def test_kill_propagates_through_session_teardown(self, tmp_path):
        """A kill during a span-end emit must surface as the kill, not
        as a secondary 'sink is closed' error from an enclosing span's
        finally block."""
        inject("obs.sink", "data", "kill")
        session = obs.RunSession(
            command="t",
            metrics_out=tmp_path / "run.jsonl",
            with_git=False,
        )
        with pytest.raises(SimulatedKill):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        session.abort()

    def test_abort_skips_manifest(self, tmp_path):
        run_file = tmp_path / "run.jsonl"
        session = obs.RunSession(
            command="t", metrics_out=run_file, with_git=False
        )
        with obs.span("work"):
            pass
        session.abort()
        assert session.manifest is None
        assert "manifest" not in run_file.read_text()

    def test_finish_tolerates_dead_sink(self, tmp_path):
        inject("obs.sink", "data", "eio")
        session = obs.RunSession(
            command="t",
            metrics_out=tmp_path / "run.jsonl",
            with_git=False,
        )
        with pytest.raises(ObservabilityError):
            with obs.span("work"):
                pass
        # The manifest emit cannot land on the dead sink, but finish()
        # must still restore the runtime and return the manifest.
        manifest = session.finish()
        assert manifest["command"] == "t"


class TestPerfHistory:
    def test_disk_error_surfaces_as_perf_error(self, tmp_path):
        inject("perf.history", "data", "eio")
        with pytest.raises(PerfError, match="ledger"):
            append_record(
                tmp_path / "HISTORY.jsonl",
                {"format": "repro/perf-history"},
            )


class TestStorePut:
    def test_write_failure_degrades_to_uncached(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        digest = artifact_digest("wcg", {"k": 1})
        inject("store.blob", "data", "enospc")
        assert store.put(digest, "wcg", b"payload") is False
        assert store.get(digest) is None

    def test_get_or_build_survives_write_failure(self, tmp_path):
        from repro.profiles.graph import WeightedGraph

        def build():
            graph = WeightedGraph()
            graph.add_edge("a", "b", 2.0)
            return graph

        store = ArtifactStore(tmp_path / "s")
        inject("store.blob", "data", "enospc")
        value = store.get_or_build("wcg", {"k": 1}, build)
        # The build's value flows through even though caching failed.
        assert value == build()
