"""IoInjection / IoFaultPlan: validation, firing, serialisation."""

import errno
import io

import pytest

from repro.chaos.plan import (
    IO_ERROR_KINDS,
    IO_POINTS,
    IoFaultPlan,
    IoInjection,
)
from repro.errors import ChaosError, SimulatedCrash, SimulatedKill


class TestInjectionValidation:
    def test_empty_site_rejected(self):
        with pytest.raises(ChaosError, match="site"):
            IoInjection(site="")

    def test_unknown_point_rejected(self):
        with pytest.raises(ChaosError, match="point"):
            IoInjection(site="store.blob", point="midway")

    def test_unknown_error_rejected(self):
        with pytest.raises(ChaosError, match="error"):
            IoInjection(site="store.blob", error="cosmic-ray")

    def test_zero_times_rejected(self):
        with pytest.raises(ChaosError, match="times"):
            IoInjection(site="store.blob", times=0)

    def test_negative_skip_rejected(self):
        with pytest.raises(ChaosError, match="skip"):
            IoInjection(site="store.blob", skip=-1)

    def test_non_injection_entry_rejected(self):
        with pytest.raises(ChaosError, match="IoInjection"):
            IoFaultPlan([{"site": "store.blob"}])


class TestFiring:
    def test_exact_match_fires(self):
        plan = IoFaultPlan([IoInjection(site="store.blob", error="eio")])
        with pytest.raises(OSError):
            plan.fire("store.blob", "data")
        assert plan.fired == [("store.blob", "data", "eio")]
        assert plan.exhausted

    def test_glob_match_fires(self):
        plan = IoFaultPlan([IoInjection(site="store.*", error="eio")])
        with pytest.raises(OSError):
            plan.fire("store.index", "data")

    def test_non_matching_site_is_silent(self):
        plan = IoFaultPlan([IoInjection(site="store.blob")])
        plan.fire("store.index", "data")
        assert plan.fired == []

    def test_non_matching_point_is_silent(self):
        plan = IoFaultPlan([IoInjection(site="store.blob", point="fsync")])
        plan.fire("store.blob", "data")
        assert plan.fired == []

    def test_skip_addresses_nth_occurrence(self):
        plan = IoFaultPlan([IoInjection(site="store.blob", skip=2)])
        plan.fire("store.blob", "data")
        plan.fire("store.blob", "data")
        with pytest.raises(OSError):
            plan.fire("store.blob", "data")
        assert len(plan.fired) == 1

    def test_times_countdown(self):
        plan = IoFaultPlan([IoInjection(site="store.blob", times=2)])
        for _ in range(2):
            with pytest.raises(OSError):
                plan.fire("store.blob", "data")
        plan.fire("store.blob", "data")  # spent: silent
        assert len(plan.fired) == 2
        assert plan.exhausted

    def test_empty_plan_is_exhausted(self):
        assert IoFaultPlan().exhausted

    def test_enospc_errno(self):
        plan = IoFaultPlan([IoInjection(site="s.*", error="enospc")])
        with pytest.raises(OSError) as caught:
            plan.fire("s.x", "data")
        assert caught.value.errno == errno.ENOSPC

    def test_eio_errno(self):
        plan = IoFaultPlan([IoInjection(site="s.*", error="eio")])
        with pytest.raises(OSError) as caught:
            plan.fire("s.x", "data")
        assert caught.value.errno == errno.EIO

    def test_kill_is_base_exception(self):
        plan = IoFaultPlan([IoInjection(site="s.*", error="kill")])
        with pytest.raises(SimulatedKill):
            plan.fire("s.x", "data")
        assert not issubclass(SimulatedKill, Exception)

    def test_crash_subclasses_kill(self):
        plan = IoFaultPlan([IoInjection(site="s.*", error="crash")])
        with pytest.raises(SimulatedCrash):
            plan.fire("s.x", "data")
        assert issubclass(SimulatedCrash, SimulatedKill)

    def test_torn_halves_streaming_payload(self):
        plan = IoFaultPlan([IoInjection(site="s.*", error="torn")])
        handle = io.StringIO()
        with pytest.raises(SimulatedCrash):
            plan.fire("s.x", "data", handle=handle, payload="0123456789\n")
        # Half the line reached the "disk" before the power cut.
        assert handle.getvalue() == "01234"

    def test_torn_truncates_atomic_handle(self):
        plan = IoFaultPlan([IoInjection(site="s.*", error="torn")])
        handle = io.BytesIO(b"0123456789")
        handle.seek(0, io.SEEK_END)
        with pytest.raises(SimulatedCrash):
            plan.fire("s.x", "data", handle=handle)
        assert handle.getvalue() == b"01234"

    def test_custom_message(self):
        plan = IoFaultPlan(
            [IoInjection(site="s.*", error="eio", message="disk died")]
        )
        with pytest.raises(OSError, match="disk died"):
            plan.fire("s.x", "data")


class TestSerialisation:
    def test_roundtrip(self):
        plan = IoFaultPlan(
            [
                IoInjection(site="store.index", point="replace",
                            error="torn", skip=1),
                IoInjection(site="runner.*", times=3, message="m"),
            ]
        )
        clone = IoFaultPlan.from_entries(plan.to_entries())
        assert clone.injections == plan.injections

    def test_defaults_omitted_from_entries(self):
        entry = IoInjection(site="store.blob").to_entry()
        assert entry == {
            "site": "store.blob", "point": "data",
            "error": "eio", "times": 1,
        }

    def test_none_entries_is_empty_plan(self):
        assert IoFaultPlan.from_entries(None).injections == ()

    def test_non_object_entry_rejected(self):
        with pytest.raises(ChaosError, match="object"):
            IoFaultPlan.from_entries(["store.blob"])

    def test_missing_site_rejected(self):
        with pytest.raises(ChaosError, match="site"):
            IoFaultPlan.from_entries([{"point": "data"}])

    def test_unknown_key_rejected(self):
        with pytest.raises(ChaosError, match="unknown keys"):
            IoFaultPlan.from_entries([{"site": "s", "when": "now"}])


class TestConstants:
    def test_points_cover_write_protocol(self):
        assert IO_POINTS == ("before", "data", "fsync", "replace", "after")

    def test_error_kinds(self):
        assert set(IO_ERROR_KINDS) == {
            "enospc", "eio", "torn", "kill", "crash"
        }
