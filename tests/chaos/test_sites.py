"""The write-site registry and the process-wide fault hook."""

import pytest

from repro.chaos import sites
from repro.chaos.plan import IoFaultPlan, IoInjection
from repro.errors import ChaosError


@pytest.fixture(autouse=True)
def clean_hook():
    """Every test starts and ends with no plan or recorder installed."""
    sites.uninstall()
    yield
    sites.uninstall()


class TestRegistry:
    def test_ids_are_family_dot_name(self):
        for site in sites.WRITE_SITES:
            family, _, name = site.partition(".")
            assert family and name, site

    def test_descriptions_are_non_empty(self):
        assert all(sites.WRITE_SITES.values())

    def test_known_surfaces_registered(self):
        expected = {
            "io.atomic_writer", "store.blob", "store.index",
            "runner.journal", "runner.artifact", "obs.sink",
            "perf.history",
        }
        assert expected <= set(sites.WRITE_SITES)


class TestInstall:
    def test_fire_without_plan_is_noop(self):
        sites.fire("store.blob", "data")

    def test_install_and_fire(self):
        plan = IoFaultPlan([IoInjection(site="store.blob", error="eio")])
        sites.install(plan)
        assert sites.active() is plan
        with pytest.raises(OSError):
            sites.fire("store.blob", "data")

    def test_install_unknown_literal_site_rejected(self):
        plan = IoFaultPlan([IoInjection(site="store.blog")])
        with pytest.raises(ChaosError, match="store.blog"):
            sites.install(plan)

    def test_install_glob_site_accepted(self):
        sites.install(IoFaultPlan([IoInjection(site="store.*")]))
        assert sites.active() is not None

    def test_install_non_plan_rejected(self):
        with pytest.raises(ChaosError, match="IoFaultPlan"):
            sites.install([IoInjection(site="store.blob")])

    def test_uninstall(self):
        sites.install(IoFaultPlan([IoInjection(site="store.blob")]))
        sites.uninstall()
        assert sites.active() is None
        sites.fire("store.blob", "data")


class TestInstalledContext:
    def test_restores_previous_plan(self):
        outer = IoFaultPlan([IoInjection(site="store.blob")])
        inner = IoFaultPlan([IoInjection(site="store.index")])
        sites.install(outer)
        with sites.installed(inner):
            assert sites.active() is inner
        assert sites.active() is outer

    def test_restores_on_exception(self):
        plan = IoFaultPlan([IoInjection(site="store.blob", error="eio")])
        with pytest.raises(OSError):
            with sites.installed(plan):
                sites.fire("store.blob", "data")
        assert sites.active() is None

    def test_none_is_passthrough(self):
        outer = IoFaultPlan([IoInjection(site="store.blob")])
        sites.install(outer)
        with sites.installed(None):
            # An optional plan that is absent must not mask an
            # installed one.
            assert sites.active() is outer
        assert sites.active() is outer


class TestRecording:
    def test_records_every_firing(self):
        events: list[tuple[str, str]] = []
        with sites.recording(events):
            sites.fire("store.blob", "before")
            sites.fire("store.blob", "data")
            sites.fire("store.index", "replace")
        assert events == [
            ("store.blob", "before"),
            ("store.blob", "data"),
            ("store.index", "replace"),
        ]

    def test_recorder_removed_after_block(self):
        events: list[tuple[str, str]] = []
        with sites.recording(events):
            pass
        sites.fire("store.blob", "data")
        assert events == []

    def test_recording_and_plan_compose(self):
        events: list[tuple[str, str]] = []
        plan = IoFaultPlan([IoInjection(site="store.blob", error="eio")])
        with sites.recording(events), sites.installed(plan):
            with pytest.raises(OSError):
                sites.fire("store.blob", "data")
        assert events == [("store.blob", "data")]
        assert plan.fired
