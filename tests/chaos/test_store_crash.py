"""Crashes inside store writes: audit-clean scenes, quarantine, gc.

The store's contract under ``SIGKILL`` (docs/crash-consistency.md):
a kill between the blob write and the index merge leaves at most a
dangling blob or a stranded temp file — warnings, never errors — and
a reopened store transparently rebuilds.
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity, audit_crash_scene, audit_store
from repro.chaos import sites
from repro.chaos.plan import IoFaultPlan, IoInjection
from repro.errors import SimulatedKill
from repro.profiles.graph import WeightedGraph
from repro.store import ArtifactStore, artifact_digest

KEY = {"trace": "t" * 64}
DIGEST = artifact_digest("wcg", KEY)
SEED_KEY = {"trace": "u" * 64}


@pytest.fixture(autouse=True)
def clean_hook():
    sites.uninstall()
    yield
    sites.uninstall()


def build() -> WeightedGraph:
    graph = WeightedGraph()
    graph.add_edge("a", "b", 2.0)
    return graph


def error_findings(root):
    return [
        found
        for found in audit_store(root)
        if found.severity is Severity.ERROR
    ]


def tamper(store: ArtifactStore, digest: str) -> None:
    path = store.blob_path(digest)
    path.write_bytes(path.read_bytes() + b"XX")


class TestKillDuringStoreWrite:
    @pytest.mark.parametrize(
        "site, point",
        [
            ("store.blob", "data"),
            ("store.blob", "fsync"),
            ("store.index", "data"),
            ("store.index", "fsync"),
            ("store.index", "replace"),
        ],
    )
    @pytest.mark.parametrize("error", ["kill", "crash"])
    def test_store_stays_audit_clean(self, tmp_path, site, point, error):
        root = tmp_path / "s"
        # An established store: the crash must not damage prior state.
        ArtifactStore(root).get_or_build("wcg", SEED_KEY, build)
        sites.install(
            IoFaultPlan(
                [IoInjection(site=site, point=point, error=error)]
            )
        )
        with pytest.raises(SimulatedKill):
            ArtifactStore(root).get_or_build("wcg", KEY, build)
        sites.uninstall()

        # The crash scene: no error-severity findings, ever.  A
        # dangling blob (index write died) or stranded temp file
        # (power cut) is acceptable residue.
        assert error_findings(root) == []
        assert audit_crash_scene(store=root) == []

        # A fresh process rebuilds transparently and repairs the cache.
        reopened = ArtifactStore(root)
        assert reopened.get_or_build("wcg", KEY, build) == build()
        assert reopened.get_or_build("wcg", KEY, build) == build()
        assert reopened.hits == 1

    def test_kill_between_blob_and_index_leaves_dangling_blob(
        self, tmp_path
    ):
        root = tmp_path / "s"
        sites.install(
            IoFaultPlan(
                [IoInjection(site="store.index", point="before",
                             error="kill")]
            )
        )
        with pytest.raises(SimulatedKill):
            ArtifactStore(root).get_or_build("wcg", KEY, build)
        sites.uninstall()
        # The blob landed; the index never heard about it.
        store = ArtifactStore(root)
        assert store.blob_path(DIGEST).exists()
        assert store.get(DIGEST) is None
        # gc reclaims the orphan.
        summary = store.gc()
        assert summary["removed_blobs"] == 1
        assert not store.blob_path(DIGEST).exists()

    def test_gc_sweeps_stranded_temp(self, tmp_path):
        root = tmp_path / "s"
        sites.install(
            IoFaultPlan(
                [IoInjection(site="store.blob", point="data",
                             error="crash")]
            )
        )
        with pytest.raises(SimulatedKill):
            ArtifactStore(root).get_or_build("wcg", KEY, build)
        sites.uninstall()
        assert list(root.rglob("*.tmp"))
        summary = ArtifactStore(root).gc()
        assert summary["tmp_swept"] == 1
        assert list(root.rglob("*.tmp")) == []


class TestQuarantine:
    def seed_corrupt(self, root) -> ArtifactStore:
        store = ArtifactStore(root)
        store.get_or_build("wcg", KEY, build)
        tamper(store, DIGEST)
        return store

    def test_second_strike_quarantines(self, tmp_path):
        store = self.seed_corrupt(tmp_path / "s")
        assert store.get(DIGEST) is None  # strike 1: plain miss
        assert not (store.quarantine_path / DIGEST).exists()
        assert store.get(DIGEST) is None  # strike 2: quarantined
        assert (store.quarantine_path / DIGEST).exists()
        assert not store.blob_path(DIGEST).exists()
        assert DIGEST not in store._index

    def test_quarantined_count_in_stats(self, tmp_path):
        store = self.seed_corrupt(tmp_path / "s")
        store.get(DIGEST)
        store.get(DIGEST)
        assert store.stats()["quarantined"] == 1

    def test_rebuild_after_quarantine_hits_again(self, tmp_path):
        store = self.seed_corrupt(tmp_path / "s")
        store.get(DIGEST)
        store.get(DIGEST)
        assert store.get_or_build("wcg", KEY, build) == build()
        assert store.get(DIGEST) is not None

    def test_gc_purges_quarantine(self, tmp_path):
        store = self.seed_corrupt(tmp_path / "s")
        store.get(DIGEST)
        store.get(DIGEST)
        summary = store.gc()
        assert summary["quarantined_removed"] == 1
        assert store.stats()["quarantined"] == 0

    def test_audit_warns_about_quarantine(self, tmp_path):
        store = self.seed_corrupt(tmp_path / "s")
        store.get(DIGEST)
        store.get(DIGEST)
        findings = audit_store(store.root)
        assert any(f.rule == "cache/quarantined" for f in findings)
        assert error_findings(store.root) == []

    def test_readonly_store_never_quarantines(self, tmp_path):
        root = tmp_path / "s"
        self.seed_corrupt(root)
        readonly = ArtifactStore(root, readonly=True)
        assert readonly.get(DIGEST) is None
        assert readonly.get(DIGEST) is None
        assert not (readonly.quarantine_path / DIGEST).exists()
