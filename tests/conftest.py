"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
from typing import Iterator

import pytest

from repro.cache.config import CacheConfig
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


@pytest.fixture(scope="session", autouse=True)
def tier1_manifest() -> Iterator[None]:
    """Observe the whole test session when ``REPRO_TEST_MANIFEST`` names
    an output path (CI uploads it as a workflow artifact).

    Off by default so local runs stay unobserved; obs unit tests that
    install their own state nest safely inside this session.
    """
    out = os.environ.get("REPRO_TEST_MANIFEST")
    if not out:
        yield
        return
    from repro.obs import RunSession

    session = RunSession(command="tier1-tests", metrics_out=out)
    try:
        yield
    finally:
        session.finish()


@pytest.fixture
def three_line_cache() -> CacheConfig:
    """The paper's Figure 1 toy: a 3-line direct-mapped cache."""
    return CacheConfig(size=96, line_size=32)


@pytest.fixture
def paper_cache() -> CacheConfig:
    """The 8 KB, 32 B line direct-mapped cache of Section 5.2."""
    return CacheConfig(size=8192, line_size=32)


@pytest.fixture
def figure1_program() -> Program:
    """Four single-line procedures: M and the leaves X, Y, Z."""
    return Program.from_sizes({"M": 32, "X": 32, "Y": 32, "Z": 32})


def full_trace(program: Program, names: list[str]) -> Trace:
    """A trace where each reference executes the whole procedure."""
    return Trace(
        program,
        [TraceEvent.full(name, program.size_of(name)) for name in names],
    )


def figure1_trace2_refs(iterations: int = 40) -> list[str]:
    """Trace #2 of Figure 1: cond true for all iterations, then false.

    Each loop iteration is M -> leaf -> M -> Z (M calls X or Y, then Z).
    """
    refs: list[str] = []
    for leaf in ("X", "Y"):
        for _ in range(iterations):
            refs.extend(["M", leaf, "M", "Z"])
    return refs


def figure1_trace1_refs(iterations: int = 40) -> list[str]:
    """Trace #1 of Figure 1: cond alternates every iteration."""
    refs: list[str] = []
    for index in range(2 * iterations):
        leaf = "X" if index % 2 == 0 else "Y"
        refs.extend(["M", leaf, "M", "Z"])
    return refs
