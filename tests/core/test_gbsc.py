"""Tests for the full GBSC algorithm, including the paper's motivating
example (Figure 1): temporal information lets GBSC find the layout that
the WCG cannot distinguish."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate
from repro.core.gbsc import GBSCPlacement, gbsc_nodes
from repro.eval.experiment import build_context
from repro.placement.base import PlacementContext
from repro.profiles.trg import build_trgs
from repro.profiles.wcg import build_wcg
from repro.program.program import Program
from tests.conftest import (
    figure1_trace1_refs,
    figure1_trace2_refs,
    full_trace,
)


def context_from_refs(program, refs, config, chunk_size=32):
    trace = full_trace(program, refs)
    return PlacementContext(
        program=program,
        config=config,
        wcg=build_wcg(trace),
        trgs=build_trgs(trace, config, chunk_size=chunk_size),
        popular=tuple(program.names),
    )


class TestFigure1Motivation:
    """With three cache lines and M given its own line, trace #2 wants
    X and Y to share a line (Z separate), while trace #1 wants X and Y
    separate (Z shares).  The WCG cannot tell the traces apart; the
    TRG can, and GBSC must produce the right layout for each."""

    @pytest.fixture
    def program(self, figure1_program):
        return figure1_program

    def _cache_lines(self, layout, config):
        return {
            name: layout.cache_sets_of(name, config)
            for name in layout.program.names
        }

    def test_trace2_overlaps_x_and_y(self, program, three_line_cache):
        context = context_from_refs(
            program, figure1_trace2_refs(), three_line_cache
        )
        layout = GBSCPlacement().place(context)
        lines = self._cache_lines(layout, three_line_cache)
        # M is the hottest block: nothing may conflict with it.
        assert not (lines["M"] & lines["X"])
        assert not (lines["M"] & lines["Y"])
        assert not (lines["M"] & lines["Z"])
        # Z interleaves with X and Y; X and Y never interleave.
        # Pigeonhole: X and Y must share the remaining line.
        assert lines["X"] == lines["Y"]
        assert not (lines["Z"] & lines["X"])

    def test_trace1_separates_x_and_y(self, program, three_line_cache):
        context = context_from_refs(
            program, figure1_trace1_refs(), three_line_cache
        )
        layout = GBSCPlacement().place(context)
        lines = self._cache_lines(layout, three_line_cache)
        assert not (lines["M"] & lines["X"])
        assert not (lines["M"] & lines["Y"])
        # X and Y alternate every iteration: they must not conflict.
        assert not (lines["X"] & lines["Y"])
        # Z is the block that shares a line (with X or Y).
        assert lines["Z"] in (lines["X"], lines["Y"])

    def test_gbsc_layouts_beat_wrong_assignment(
        self, program, three_line_cache
    ):
        """Simulate both traces under both GBSC layouts: each layout
        must win (or tie) on the trace it was trained for."""
        trace1 = full_trace(program, figure1_trace1_refs())
        trace2 = full_trace(program, figure1_trace2_refs())
        layout1 = GBSCPlacement().place(
            context_from_refs(program, figure1_trace1_refs(), three_line_cache)
        )
        layout2 = GBSCPlacement().place(
            context_from_refs(program, figure1_trace2_refs(), three_line_cache)
        )
        own1 = simulate(layout1, trace1, three_line_cache).misses
        cross1 = simulate(layout2, trace1, three_line_cache).misses
        own2 = simulate(layout2, trace2, three_line_cache).misses
        cross2 = simulate(layout1, trace2, three_line_cache).misses
        assert own1 <= cross1
        assert own2 <= cross2
        # And at least one of them is a strict improvement.
        assert own1 < cross1 or own2 < cross2


class TestStructure:
    @pytest.fixture
    def config(self):
        return CacheConfig(size=256, line_size=32)

    def test_all_procedures_in_layout(self, config):
        program = Program.from_sizes(
            {"a": 64, "b": 64, "c": 64, "cold": 64}
        )
        refs = ["a", "b", "a", "c", "a", "b"] * 10
        context = context_from_refs(program, refs, config)
        layout = GBSCPlacement().place(context)
        assert sorted(layout.order_by_address()) == sorted(program.names)

    def test_deterministic(self, config):
        program = Program.from_sizes({"a": 64, "b": 96, "c": 64})
        refs = ["a", "b", "c", "a", "c", "b"] * 20
        context = context_from_refs(program, refs, config)
        assert (
            GBSCPlacement().place(context)
            == GBSCPlacement().place(context)
        )

    def test_fast_and_reference_methods_agree(self, config):
        program = Program.from_sizes({"a": 64, "b": 96, "c": 64})
        refs = ["a", "b", "c", "a", "c", "b"] * 20
        context = context_from_refs(program, refs, config)
        assert GBSCPlacement(method="fast").place(
            context
        ) == GBSCPlacement(method="reference").place(context)

    def test_popular_only_merging(self, config):
        """Unpopular procedures never receive cache offsets: they trail
        or fill gaps."""
        program = Program.from_sizes({"a": 64, "b": 64, "cold": 64})
        refs = ["a", "b", "a", "cold", "a", "b"] * 10
        trace = full_trace(program, refs)
        context = PlacementContext(
            program=program,
            config=config,
            wcg=build_wcg(trace),
            trgs=build_trgs(trace, config, popular={"a", "b"}),
            popular=("a", "b"),
        )
        result = GBSCPlacement().place_detailed(context)
        placed = {
            p.name for node in result.nodes for p in node.placements
        }
        assert placed == {"a", "b"}

    def test_empty_popular_falls_back_to_trg_nodes(self, config):
        program = Program.from_sizes({"a": 64, "b": 64})
        refs = ["a", "b"] * 10
        trace = full_trace(program, refs)
        context = PlacementContext(
            program=program,
            config=config,
            wcg=build_wcg(trace),
            trgs=build_trgs(trace, config),
            popular=(),
        )
        layout = GBSCPlacement().place(context)
        assert sorted(layout.order_by_address()) == ["a", "b"]

    def test_requires_trgs(self, config):
        program = Program.from_sizes({"a": 64})
        trace = full_trace(program, ["a"])
        context = PlacementContext(
            program=program, config=config, wcg=build_wcg(trace)
        )
        from repro.errors import PlacementError

        with pytest.raises(PlacementError):
            GBSCPlacement().place(context)


class TestGBSCNodes:
    def test_disconnected_popular_stay_separate(self):
        """TRG_select need not collapse to one node (Section 4.3)."""
        config = CacheConfig(size=256, line_size=32)
        program = Program.from_sizes(
            {"a": 64, "b": 64, "c": 64, "d": 64}
        )
        refs = (["a", "b"] * 10) + (["c", "d"] * 10)
        trace = full_trace(program, refs)
        trgs = build_trgs(trace, config)
        # b->c transition happens once; drop that edge to force two
        # components.
        trgs.select.remove_edge("b", "c")
        trgs.select.remove_edge("a", "c")
        trgs.select.remove_edge("b", "d")
        trgs.select.remove_edge("a", "d")
        nodes = gbsc_nodes(
            trgs.select, trgs.place, program.names, program, config
        )
        assert len(nodes) == 2

    def test_merge_count_bounded_by_popular(self):
        config = CacheConfig(size=256, line_size=32)
        program = Program.from_sizes({f"p{i}": 64 for i in range(5)})
        refs = [f"p{i % 5}" for i in range(100)]
        trace = full_trace(program, refs)
        trgs = build_trgs(trace, config)
        nodes = gbsc_nodes(
            trgs.select, trgs.place, program.names, program, config
        )
        total = sum(len(node) for node in nodes)
        assert total == 5
