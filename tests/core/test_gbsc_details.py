"""Focused tests for GBSC's inner mechanics (working graph, heap,
detailed results) and linearization corner cases."""

import pytest

from repro.cache.config import CacheConfig
from repro.core.gbsc import GBSCPlacement, gbsc_nodes
from repro.core.linearize import linearize
from repro.core.merge import MergeNode, PlacedProcedure
from repro.placement.base import PlacementContext
from repro.profiles.graph import WeightedGraph
from repro.profiles.trg import TRGBuildStats, TRGPair
from repro.program.procedure import ChunkId
from repro.program.program import Program


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)


def make_trgs(select, place, chunk_size=256) -> TRGPair:
    stats = TRGBuildStats(refs_processed=1, avg_q_entries=1.0)
    return TRGPair(
        select=select,
        place=place,
        select_stats=stats,
        place_stats=stats,
        chunk_size=chunk_size,
    )


class TestWorkingGraphMerging:
    def test_merged_edges_accumulate(self, config):
        """After merging a-b, the working edge to c is the sum of the
        original a-c and b-c weights, so c merges next regardless of
        which original edge was larger."""
        program = Program.from_sizes({"a": 32, "b": 32, "c": 32, "d": 32})
        select = WeightedGraph()
        select.add_edge("a", "b", 100.0)
        select.add_edge("a", "c", 30.0)
        select.add_edge("b", "c", 30.0)
        select.add_edge("c", "d", 50.0)
        place = WeightedGraph()
        nodes = gbsc_nodes(
            select, place, ("a", "b", "c", "d"), program, config
        )
        # Everything is connected: one node remains.
        assert len(nodes) == 1
        assert set(nodes[0].names) == {"a", "b", "c", "d"}

    def test_stale_heap_entries_skipped(self, config):
        """A graph engineered so the heap holds stale weights: after
        the first merge, the old a-c edge entry is stale because a-c
        accumulated b's contribution."""
        program = Program.from_sizes({"a": 32, "b": 32, "c": 32})
        select = WeightedGraph()
        select.add_edge("a", "b", 10.0)
        select.add_edge("a", "c", 4.0)
        select.add_edge("b", "c", 5.0)
        place = WeightedGraph()
        nodes = gbsc_nodes(select, place, ("a", "b", "c"), program, config)
        assert len(nodes) == 1

    def test_isolated_popular_procedures_survive(self, config):
        program = Program.from_sizes({"a": 32, "b": 32, "lone": 32})
        select = WeightedGraph()
        select.add_edge("a", "b", 5.0)
        nodes = gbsc_nodes(
            select, WeightedGraph(), ("a", "b", "lone"), program, config
        )
        assert len(nodes) == 2
        assert any(node.names == ("lone",) for node in nodes)

    def test_nodes_sorted_largest_first(self, config):
        program = Program.from_sizes(
            {"a": 32, "b": 32, "c": 32, "x": 32}
        )
        select = WeightedGraph()
        select.add_edge("a", "b", 5.0)
        select.add_edge("b", "c", 4.0)
        nodes = gbsc_nodes(
            select, WeightedGraph(), ("a", "b", "c", "x"), program, config
        )
        assert len(nodes[0]) == 3
        assert len(nodes[1]) == 1


class TestPlaceDetailed:
    def test_result_exposes_nodes_and_linearization(self, config):
        program = Program.from_sizes({"a": 64, "b": 64, "cold": 64})
        select = WeightedGraph()
        select.add_edge("a", "b", 3.0)
        place = WeightedGraph()
        place.add_edge(ChunkId("a", 0), ChunkId("b", 0), 3.0)
        context = PlacementContext(
            program=program,
            config=config,
            wcg=WeightedGraph(),
            trgs=make_trgs(select, place),
            popular=("a", "b"),
        )
        result = GBSCPlacement().place_detailed(context)
        assert result.layout is result.linearization.layout
        assert len(result.nodes) == 1
        assert set(result.nodes[0].names) == {"a", "b"}
        assert result.linearization.popular_order


class TestLinearizeCorners:
    def test_first_procedure_nonzero_offset(self, config):
        """With no offset-0 procedure, the scan starts from the
        smallest offset and still realises it."""
        program = Program.from_sizes({"a": 32, "b": 32})
        nodes = [
            MergeNode(
                [PlacedProcedure("a", 3), PlacedProcedure("b", 6)]
            )
        ]
        layout = linearize(nodes, program, config).layout
        assert layout.start_set_of("a", config) == 3
        assert layout.start_set_of("b", config) == 6
        assert layout.address_of("a") == 3 * 32

    def test_offsets_reduced_modulo_cache(self, config):
        """Node offsets beyond the line count are taken modulo C."""
        program = Program.from_sizes({"a": 32})
        nodes = [MergeNode([PlacedProcedure("a", 8 + 2)])]
        layout = linearize(nodes, program, config).layout
        assert layout.start_set_of("a", config) == 2

    def test_start_tie_breaks_deterministically(self, config):
        """Equal start offsets break by node size then name — here
        both nodes are singletons, so name order decides."""
        program = Program.from_sizes({"big": 64, "small": 32})
        nodes = [
            MergeNode([PlacedProcedure("big", 2)]),
            MergeNode([PlacedProcedure("small", 2)]),
        ]
        result = linearize(nodes, program, config)
        assert result.popular_order[0] == "big"
