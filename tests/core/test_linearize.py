"""Tests for the Section 4.3 linearization."""

import pytest

from repro.cache.config import CacheConfig
from repro.core.linearize import linearize
from repro.core.merge import MergeNode, PlacedProcedure
from repro.errors import PlacementError
from repro.program.program import Program


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)  # 8 lines


class TestOffsetRealization:
    def test_every_offset_realized_mod_cache(self, config):
        """The defining invariant: each popular procedure's address is
        congruent to its node offset modulo the cache size."""
        program = Program.from_sizes({"a": 64, "b": 64, "c": 64, "d": 64})
        nodes = [
            MergeNode(
                [
                    PlacedProcedure("a", 0),
                    PlacedProcedure("b", 3),
                    PlacedProcedure("c", 6),
                ]
            ),
            MergeNode([PlacedProcedure("d", 2)]),
        ]
        result = linearize(nodes, program, config)
        layout = result.layout
        for name, offset in [("a", 0), ("b", 3), ("c", 6), ("d", 2)]:
            assert layout.start_set_of(name, config) == offset

    def test_relative_alignment_within_node_preserved(self, config):
        program = Program.from_sizes({"a": 64, "b": 96})
        nodes = [
            MergeNode([PlacedProcedure("a", 1), PlacedProcedure("b", 5)])
        ]
        layout = linearize(nodes, program, config).layout
        delta = (
            layout.start_set_of("b", config)
            - layout.start_set_of("a", config)
        ) % config.num_lines
        assert delta == 4

    def test_adjacent_offsets_get_zero_gap(self, config):
        """b starts exactly where a ends: the layout should be
        gap-free between them."""
        program = Program.from_sizes({"a": 64, "b": 64})
        nodes = [
            MergeNode([PlacedProcedure("a", 0), PlacedProcedure("b", 2)])
        ]
        result = linearize(nodes, program, config)
        layout = result.layout
        assert layout.address_of("b") == layout.end_address_of("a")
        assert result.gap_bytes == 0

    def test_wraparound_gap(self, config):
        """A candidate whose offset precedes the last end line wraps
        into the next cache-size region."""
        program = Program.from_sizes({"a": 96, "b": 32})
        nodes = [
            MergeNode([PlacedProcedure("a", 0), PlacedProcedure("b", 1)])
        ]
        layout = linearize(nodes, program, config).layout
        # a (offset 0, lines 0-2) is placed first; b's offset 1 lies
        # "behind" a's end line, so b wraps into the next cache frame.
        assert layout.start_set_of("a", config) == 0
        assert layout.start_set_of("b", config) == 1
        assert layout.address_of("b") == 288  # 256 + 1 * 32


class TestGapFilling:
    def test_unpopular_fill_gaps(self, config):
        program = Program.from_sizes(
            {"a": 32, "b": 32, "filler": 64, "tail": 320}
        )
        nodes = [
            MergeNode([PlacedProcedure("a", 0), PlacedProcedure("b", 4)])
        ]
        result = linearize(
            nodes, program, config, unpopular=["filler", "tail"]
        )
        layout = result.layout
        # Gap between a (ends at 32) and b (starts at line 4 = 128) is
        # 96 bytes; 'filler' (64) fits, 'tail' (320) does not.
        assert result.gap_fillers == ("filler",)
        assert 32 <= layout.address_of("filler") < 128
        assert layout.address_of("tail") >= layout.end_address_of("b")

    def test_best_fit_prefers_largest(self, config):
        program = Program.from_sizes(
            {"a": 32, "b": 32, "small": 32, "medium": 64}
        )
        nodes = [
            MergeNode([PlacedProcedure("a", 0), PlacedProcedure("b", 3)])
        ]
        result = linearize(
            nodes, program, config, unpopular=["small", "medium"]
        )
        # 64-byte gap: best fit takes 'medium', which fills it exactly;
        # 'small' trails the layout instead.
        assert result.gap_fillers == ("medium",)
        assert result.gap_bytes == 0
        layout = result.layout
        assert layout.address_of("small") >= layout.end_address_of("b")

    def test_leftover_unpopular_appended_in_order(self, config):
        program = Program.from_sizes(
            {"a": 256, "u1": 64, "u2": 64}
        )
        nodes = [MergeNode([PlacedProcedure("a", 0)])]
        result = linearize(nodes, program, config, unpopular=["u1", "u2"])
        layout = result.layout
        assert layout.address_of("u1") == layout.end_address_of("a")
        assert layout.address_of("u2") == layout.end_address_of("u1")

    def test_procedures_not_mentioned_are_appended(self, config):
        program = Program.from_sizes({"a": 32, "ghost": 32})
        nodes = [MergeNode([PlacedProcedure("a", 0)])]
        layout = linearize(nodes, program, config).layout
        assert layout.address_of("ghost") >= layout.end_address_of("a")


class TestValidation:
    def test_duplicate_procedure_rejected(self, config):
        program = Program.from_sizes({"a": 32})
        nodes = [MergeNode.single("a"), MergeNode.single("a")]
        with pytest.raises(PlacementError):
            linearize(nodes, program, config)

    def test_unknown_procedure_rejected(self, config):
        program = Program.from_sizes({"a": 32})
        with pytest.raises(PlacementError):
            linearize([MergeNode.single("zz")], program, config)

    def test_popular_unpopular_overlap_rejected(self, config):
        program = Program.from_sizes({"a": 32})
        with pytest.raises(PlacementError):
            linearize(
                [MergeNode.single("a")], program, config, unpopular=["a"]
            )

    def test_no_nodes_appends_everything(self, config):
        program = Program.from_sizes({"a": 32, "b": 32})
        result = linearize([], program, config, unpopular=["a", "b"])
        assert result.layout.order_by_address() == ["a", "b"]
        assert result.popular_order == ()


class TestDeterminism:
    def test_repeatable(self, config):
        program = Program.from_sizes(
            {f"p{i}": 48 + 16 * i for i in range(6)}
        )
        nodes = [
            MergeNode(
                [
                    PlacedProcedure("p0", 0),
                    PlacedProcedure("p1", 4),
                    PlacedProcedure("p2", 2),
                ]
            ),
            MergeNode(
                [PlacedProcedure("p3", 6), PlacedProcedure("p4", 1)]
            ),
        ]
        a = linearize(nodes, program, config, unpopular=["p5"])
        b = linearize(nodes, program, config, unpopular=["p5"])
        assert a.layout == b.layout
        assert a.popular_order == b.popular_order
