"""Tests for the Figure 4 merge_nodes step."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.core.merge import (
    MergeNode,
    PlacedProcedure,
    best_offset,
    line_occupancy,
    merge_nodes,
    offset_costs_fast,
    offset_costs_reference,
)
from repro.errors import PlacementError
from repro.profiles.graph import WeightedGraph
from repro.program.procedure import ChunkId
from repro.program.program import Program


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)  # 8 lines


class TestMergeNode:
    def test_single(self):
        node = MergeNode.single("a")
        assert node.placements == (PlacedProcedure("a", 0),)

    def test_duplicate_rejected(self):
        with pytest.raises(PlacementError):
            MergeNode([PlacedProcedure("a", 0), PlacedProcedure("a", 1)])

    def test_negative_offset_rejected(self):
        with pytest.raises(PlacementError):
            PlacedProcedure("a", -1)

    def test_shifted_wraps(self):
        node = MergeNode([PlacedProcedure("a", 6)])
        shifted = node.shifted(4, num_lines=8)
        assert shifted.offset_of("a") == 2

    def test_offset_of_unknown(self):
        with pytest.raises(PlacementError):
            MergeNode.single("a").offset_of("b")

    def test_combined(self):
        combined = MergeNode.single("a").combined_with(MergeNode.single("b"))
        assert combined.names == ("a", "b")

    def test_equality_order_insensitive(self):
        n1 = MergeNode([PlacedProcedure("a", 0), PlacedProcedure("b", 2)])
        n2 = MergeNode([PlacedProcedure("b", 2), PlacedProcedure("a", 0)])
        assert n1 == n2


class TestLineOccupancy:
    def test_small_procedure(self, config):
        program = Program.from_sizes({"a": 64})
        occupancy = line_occupancy(
            MergeNode.single("a"), program, config, chunk_size=256
        )
        assert occupancy[0] == [ChunkId("a", 0)]
        assert occupancy[1] == [ChunkId("a", 0)]
        assert occupancy[2] == []

    def test_offset_placement(self, config):
        program = Program.from_sizes({"a": 32})
        node = MergeNode([PlacedProcedure("a", 5)])
        occupancy = line_occupancy(node, program, config, chunk_size=256)
        assert occupancy[5] == [ChunkId("a", 0)]
        assert sum(len(line) for line in occupancy) == 1

    def test_wrap_around(self, config):
        program = Program.from_sizes({"a": 96})
        node = MergeNode([PlacedProcedure("a", 6)])
        occupancy = line_occupancy(node, program, config, chunk_size=256)
        assert occupancy[6] == [ChunkId("a", 0)]
        assert occupancy[7] == [ChunkId("a", 0)]
        assert occupancy[0] == [ChunkId("a", 0)]

    def test_chunk_boundaries(self, config):
        program = Program.from_sizes({"a": 512})
        occupancy = line_occupancy(
            MergeNode.single("a"), program, config, chunk_size=256
        )
        # 512 bytes = 16 lines wrap twice over 8 lines; lines 0..7 get
        # chunk 0 (bytes 0-255) and chunk 1 (bytes 256-511).
        assert occupancy[0] == [ChunkId("a", 0), ChunkId("a", 1)]

    def test_larger_than_cache_procedure(self, config):
        program = Program.from_sizes({"a": 1024})
        occupancy = line_occupancy(
            MergeNode.single("a"), program, config, chunk_size=256
        )
        for line in occupancy:
            assert len(line) == 4  # 1024/256 bytes per line slot


class TestOffsetCosts:
    def test_zero_when_no_edges(self, config):
        program = Program.from_sizes({"a": 64, "b": 64})
        graph = WeightedGraph()
        costs = offset_costs_fast(
            MergeNode.single("a"),
            MergeNode.single("b"),
            graph,
            program,
            config,
        )
        assert np.all(costs == 0)

    def test_overlap_costs_weight(self, config):
        program = Program.from_sizes({"a": 32, "b": 32})
        graph = WeightedGraph()
        graph.add_edge(ChunkId("a", 0), ChunkId("b", 0), 7.0)
        costs = offset_costs_reference(
            MergeNode.single("a"),
            MergeNode.single("b"),
            graph,
            program,
            config,
        )
        # Only offset 0 overlaps the two single-line procedures.
        assert costs[0] == 7.0
        assert np.all(costs[1:] == 0)

    def test_multi_line_overlap_scales(self, config):
        program = Program.from_sizes({"a": 64, "b": 64})
        graph = WeightedGraph()
        graph.add_edge(ChunkId("a", 0), ChunkId("b", 0), 3.0)
        costs = offset_costs_reference(
            MergeNode.single("a"),
            MergeNode.single("b"),
            graph,
            program,
            config,
        )
        # Offset 0: both lines overlap -> 2 line-pairs x 3.0.
        assert costs[0] == 6.0
        # Offset 1: one line overlaps.
        assert costs[1] == 3.0
        assert costs[7] == 3.0  # wrap: b's line 7+1 = 0 overlaps a's 0

    def test_intra_node_conflicts_not_counted(self, config):
        program = Program.from_sizes({"a": 32, "b": 32, "c": 32})
        graph = WeightedGraph()
        # Heavy edge *within* n1 must not affect the offset costs.
        graph.add_edge(ChunkId("a", 0), ChunkId("b", 0), 1000.0)
        n1 = MergeNode([PlacedProcedure("a", 0), PlacedProcedure("b", 0)])
        n2 = MergeNode.single("c")
        costs = offset_costs_reference(n1, n2, graph, program, config)
        assert np.all(costs == 0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_fast_matches_reference(self, seed):
        config = CacheConfig(size=256, line_size=32)
        rng = random.Random(seed)
        sizes = {
            f"p{i}": rng.randint(16, 600) for i in range(6)
        }
        program = Program.from_sizes(sizes)
        graph = WeightedGraph()
        names = list(sizes)
        for _ in range(rng.randint(0, 30)):
            a, b = rng.sample(names, 2)
            graph.add_edge(
                ChunkId(a, rng.randrange(program[a].num_chunks())),
                ChunkId(b, rng.randrange(program[b].num_chunks())),
                rng.randint(1, 100),
            )
        split = rng.randint(1, 5)
        n1 = MergeNode(
            [
                PlacedProcedure(name, rng.randrange(config.num_lines))
                for name in names[:split]
            ]
        )
        n2 = MergeNode(
            [
                PlacedProcedure(name, rng.randrange(config.num_lines))
                for name in names[split:]
            ]
        )
        fast = offset_costs_fast(n1, n2, graph, program, config)
        reference = offset_costs_reference(n1, n2, graph, program, config)
        assert np.allclose(fast, reference, atol=1e-6)


class TestBestOffset:
    def test_first_minimum_wins(self):
        assert best_offset(np.asarray([3.0, 1.0, 1.0, 2.0])) == 1

    def test_all_equal_picks_zero(self):
        assert best_offset(np.zeros(8)) == 0

    def test_fft_noise_tolerated(self):
        costs = np.asarray([1e-12, 0.0, 5.0])
        assert best_offset(costs) == 0


class TestMergeNodes:
    def test_ph_chain_equivalence(self, config):
        """Section 4.2, note 3: merging two small single-procedure
        nodes places the second at the first zero-cost line — right
        after the first procedure, exactly like a PH chain."""
        program = Program.from_sizes({"p": 96, "q": 64})
        graph = WeightedGraph()
        graph.add_edge(ChunkId("p", 0), ChunkId("q", 0), 5.0)
        merged = merge_nodes(
            MergeNode.single("p"),
            MergeNode.single("q"),
            graph,
            program,
            config,
        )
        # p occupies lines 0-2; the first zero-cost offset for q is 3.
        assert merged.offset_of("p") == 0
        assert merged.offset_of("q") == 3

    def test_shared_procedure_rejected(self, config):
        program = Program.from_sizes({"p": 32})
        graph = WeightedGraph()
        with pytest.raises(PlacementError):
            merge_nodes(
                MergeNode.single("p"),
                MergeNode.single("p"),
                graph,
                program,
                config,
            )

    def test_unknown_method_rejected(self, config):
        program = Program.from_sizes({"p": 32, "q": 32})
        with pytest.raises(PlacementError):
            merge_nodes(
                MergeNode.single("p"),
                MergeNode.single("q"),
                WeightedGraph(),
                program,
                config,
                method="nope",
            )

    def test_intra_node_alignment_preserved(self, config):
        """Merging never rearranges procedures within a node."""
        program = Program.from_sizes({"a": 32, "b": 32, "c": 32})
        graph = WeightedGraph()
        graph.add_edge(ChunkId("a", 0), ChunkId("c", 0), 2.0)
        n1 = MergeNode([PlacedProcedure("a", 1), PlacedProcedure("b", 4)])
        merged = merge_nodes(
            n1, MergeNode.single("c"), graph, program, config
        )
        assert merged.offset_of("a") == 1
        assert merged.offset_of("b") == 4

    def test_merge_avoids_conflict(self, config):
        """q must not be placed on top of p when their chunks have a
        TRG_place edge and a free line exists."""
        program = Program.from_sizes({"p": 128, "q": 128})
        graph = WeightedGraph()
        for i in range(1):
            graph.add_edge(ChunkId("p", 0), ChunkId("q", 0), 10.0)
        merged = merge_nodes(
            MergeNode.single("p"),
            MergeNode.single("q"),
            graph,
            program,
            config,
        )
        p_lines = {(merged.offset_of("p") + i) % 8 for i in range(4)}
        q_lines = {(merged.offset_of("q") + i) % 8 for i in range(4)}
        assert not (p_lines & q_lines)

    def test_reference_method_agrees(self, config):
        program = Program.from_sizes({"p": 96, "q": 64})
        graph = WeightedGraph()
        graph.add_edge(ChunkId("p", 0), ChunkId("q", 0), 5.0)
        fast = merge_nodes(
            MergeNode.single("p"), MergeNode.single("q"),
            graph, program, config, method="fast",
        )
        reference = merge_nodes(
            MergeNode.single("p"), MergeNode.single("q"),
            graph, program, config, method="reference",
        )
        assert fast == reference


class TestNonAlignedChunkSize:
    """chunk_size not a multiple of line_size (regression: lines used
    to be credited only to the chunk containing their first byte)."""

    def test_straddled_chunk_conflict_is_counted(self, config):
        # a: 96 bytes, chunks of 48 -> line 1 (bytes 32-63) straddles
        # the chunk 0/1 boundary.  An edge on chunk 1 must cost at
        # every line that holds chunk-1 bytes: lines 1 and 2.
        program = Program.from_sizes({"a": 96, "b": 32})
        graph = WeightedGraph()
        graph.add_edge(ChunkId("a", 1), ChunkId("b", 0), 5.0)
        costs = offset_costs_reference(
            MergeNode.single("a"),
            MergeNode.single("b"),
            graph,
            program,
            config,
            chunk_size=48,
        )
        assert costs[0] == 0.0  # line 0 is chunk 0 only
        assert costs[1] == 5.0  # straddled line: chunk 1 present
        assert costs[2] == 5.0  # line 2 is chunk 1 only

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_fast_matches_reference_non_aligned(self, seed):
        config = CacheConfig(size=256, line_size=32)
        chunk_size = 48
        rng = random.Random(seed)
        sizes = {f"p{i}": rng.randint(16, 400) for i in range(4)}
        program = Program.from_sizes(sizes)
        graph = WeightedGraph()
        names = list(sizes)
        for _ in range(rng.randint(0, 20)):
            a, b = rng.sample(names, 2)
            graph.add_edge(
                ChunkId(a, rng.randrange(program[a].num_chunks(chunk_size))),
                ChunkId(b, rng.randrange(program[b].num_chunks(chunk_size))),
                rng.randint(1, 100),
            )
        n1 = MergeNode(
            [PlacedProcedure(names[0], rng.randrange(config.num_lines))]
        )
        n2 = MergeNode(
            [
                PlacedProcedure(name, rng.randrange(config.num_lines))
                for name in names[1:]
            ]
        )
        fast = offset_costs_fast(
            n1, n2, graph, program, config, chunk_size=chunk_size
        )
        reference = offset_costs_reference(
            n1, n2, graph, program, config, chunk_size=chunk_size
        )
        assert np.allclose(fast, reference, atol=1e-6)
