"""Edge cases of chunk/line interaction in line occupancy."""

import pytest

from repro.cache.config import CacheConfig
from repro.core.merge import MergeNode, line_occupancy
from repro.program.procedure import ChunkId
from repro.program.program import Program


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)


class TestChunkLineInteraction:
    def test_line_attributed_to_chunk_at_line_start(self, config):
        """When the chunk size is not a multiple of the line size, a
        line crossing a chunk boundary is attributed to the chunk
        containing the line's first byte (matching Figure 4's
        line-granular CACHE array)."""
        program = Program.from_sizes({"a": 96})
        occupancy = line_occupancy(
            MergeNode.single("a"), program, config, chunk_size=48
        )
        # line 0: bytes 0-31 -> chunk 0; line 1: bytes 32-63 starts in
        # chunk 1 (byte 32 is within chunk 0's 0-47? No: 32 < 48, so
        # chunk 0). (1*32)//48 == 0; line 2: (2*32)//48 == 1.
        assert occupancy[0] == [ChunkId("a", 0)]
        assert occupancy[1] == [ChunkId("a", 0)]
        assert occupancy[2] == [ChunkId("a", 1)]

    def test_tiny_chunks_many_per_line(self, config):
        """Chunk size below the line size: each line is attributed to
        the chunk at its start; intermediate chunks never appear in
        the occupancy (they share a line with their predecessor)."""
        program = Program.from_sizes({"a": 64})
        occupancy = line_occupancy(
            MergeNode.single("a"), program, config, chunk_size=16
        )
        assert occupancy[0] == [ChunkId("a", 0)]
        assert occupancy[1] == [ChunkId("a", 2)]

    def test_offset_does_not_change_chunk_attribution(self, config):
        """Moving the procedure's cache offset rotates lines but keeps
        the procedure-relative chunk attribution fixed."""
        program = Program.from_sizes({"a": 96})
        base = line_occupancy(
            MergeNode.single("a"), program, config, chunk_size=48
        )
        from repro.core.merge import PlacedProcedure

        moved = line_occupancy(
            MergeNode([PlacedProcedure("a", 5)]),
            program,
            config,
            chunk_size=48,
        )
        assert moved[5] == base[0]
        assert moved[6] == base[1]
        assert moved[7] == base[2]

    def test_total_entries_equal_total_lines(self, config):
        program = Program.from_sizes({"a": 100, "b": 300})
        node = MergeNode.single("a").combined_with(
            MergeNode.single("b").shifted(3, config.num_lines)
        )
        occupancy = line_occupancy(node, program, config)
        total_entries = sum(len(line) for line in occupancy)
        lines_a = len(config.lines_spanned(0, 100))
        lines_b = len(config.lines_spanned(0, 300))
        assert total_entries == lines_a + lines_b
