"""Edge cases of chunk/line interaction in line occupancy."""

import pytest

from repro.cache.config import CacheConfig
from repro.core.merge import MergeNode, line_occupancy
from repro.program.procedure import ChunkId
from repro.program.program import Program


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)


class TestChunkLineInteraction:
    def test_line_credits_every_overlapping_chunk(self, config):
        """When the chunk size is not a multiple of the line size, a
        line crossing a chunk boundary is credited to *both* chunks it
        holds bytes of (Figure 4's CACHE array maps code to lines; a
        straddled chunk conflicts through that line too)."""
        program = Program.from_sizes({"a": 96})
        occupancy = line_occupancy(
            MergeNode.single("a"), program, config, chunk_size=48
        )
        # line 0: bytes 0-31 -> chunk 0 only; line 1: bytes 32-63
        # straddles the chunk 0/1 boundary at byte 48; line 2: bytes
        # 64-95 -> chunk 1 only.
        assert occupancy[0] == [ChunkId("a", 0)]
        assert occupancy[1] == [ChunkId("a", 0), ChunkId("a", 1)]
        assert occupancy[2] == [ChunkId("a", 1)]

    def test_tiny_chunks_all_appear(self, config):
        """Chunk size below the line size: every chunk sharing a line
        is credited, so intermediate chunks appear in the occupancy
        rather than vanishing behind their line-start neighbour."""
        program = Program.from_sizes({"a": 64})
        occupancy = line_occupancy(
            MergeNode.single("a"), program, config, chunk_size=16
        )
        assert occupancy[0] == [ChunkId("a", 0), ChunkId("a", 1)]
        assert occupancy[1] == [ChunkId("a", 2), ChunkId("a", 3)]

    def test_trailing_line_stops_at_procedure_end(self, config):
        """The final, partial line only credits chunks that exist:
        bytes past the procedure's end belong to no chunk."""
        program = Program.from_sizes({"a": 40})
        occupancy = line_occupancy(
            MergeNode.single("a"), program, config, chunk_size=48
        )
        # line 1 holds bytes 32-39 only; chunk 0 covers 0-39.
        assert occupancy[0] == [ChunkId("a", 0)]
        assert occupancy[1] == [ChunkId("a", 0)]

    def test_offset_does_not_change_chunk_attribution(self, config):
        """Moving the procedure's cache offset rotates lines but keeps
        the procedure-relative chunk attribution fixed."""
        program = Program.from_sizes({"a": 96})
        base = line_occupancy(
            MergeNode.single("a"), program, config, chunk_size=48
        )
        from repro.core.merge import PlacedProcedure

        moved = line_occupancy(
            MergeNode([PlacedProcedure("a", 5)]),
            program,
            config,
            chunk_size=48,
        )
        assert moved[5] == base[0]
        assert moved[6] == base[1]
        assert moved[7] == base[2]

    def test_aligned_config_credits_one_chunk_per_line(self, config):
        """With the default geometry (chunk size a multiple of the
        line size) every line maps to exactly one chunk, so the fix
        leaves aligned configurations untouched."""
        program = Program.from_sizes({"a": 100, "b": 300})
        node = MergeNode.single("a").combined_with(
            MergeNode.single("b").shifted(3, config.num_lines)
        )
        occupancy = line_occupancy(node, program, config)
        total_entries = sum(len(line) for line in occupancy)
        lines_a = len(config.lines_spanned(0, 100))
        lines_b = len(config.lines_spanned(0, 300))
        assert total_entries == lines_a + lines_b
