"""Tests for the page-affinity linearization variant (Section 4.3)."""

import pytest

from repro.cache.config import CacheConfig
from repro.core.gbsc import GBSCPlacement
from repro.core.linearize import linearize
from repro.core.merge import MergeNode, PlacedProcedure
from repro.eval.memory import page_stats
from repro.placement.base import PlacementContext
from repro.profiles.graph import WeightedGraph
from repro.profiles.trg import build_trgs
from repro.profiles.wcg import build_wcg
from repro.program.program import Program
from tests.conftest import full_trace


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)


class TestAffinityTieBreak:
    def test_affine_candidate_wins_gap_tie(self, config):
        """Two candidates with identical offsets (hence identical
        gaps): affinity decides the order."""
        program = Program.from_sizes(
            {"first": 32, "friend": 32, "stranger": 32}
        )
        nodes = [
            MergeNode([PlacedProcedure("first", 0)]),
            MergeNode([PlacedProcedure("friend", 2)]),
            MergeNode([PlacedProcedure("stranger", 2)]),
        ]
        affinity = WeightedGraph()
        affinity.add_edge("first", "friend", 50.0)
        result = linearize(
            nodes, program, config, affinity=affinity
        )
        assert result.popular_order == ("first", "friend", "stranger")

    def test_plain_tie_break_is_name_order(self, config):
        program = Program.from_sizes(
            {"first": 32, "zzz": 32, "aaa": 32}
        )
        nodes = [
            MergeNode([PlacedProcedure("first", 0)]),
            MergeNode([PlacedProcedure("zzz", 2)]),
            MergeNode([PlacedProcedure("aaa", 2)]),
        ]
        result = linearize(nodes, program, config)
        assert result.popular_order == ("first", "aaa", "zzz")

    def test_affinity_overrides_name_order(self, config):
        program = Program.from_sizes(
            {"first": 32, "zzz": 32, "aaa": 32}
        )
        nodes = [
            MergeNode([PlacedProcedure("first", 0)]),
            MergeNode([PlacedProcedure("zzz", 2)]),
            MergeNode([PlacedProcedure("aaa", 2)]),
        ]
        affinity = WeightedGraph()
        affinity.add_edge("first", "zzz", 10.0)
        result = linearize(nodes, program, config, affinity=affinity)
        assert result.popular_order == ("first", "zzz", "aaa")

    def test_offsets_still_realized(self, config):
        program = Program.from_sizes({"a": 32, "b": 32, "c": 32})
        nodes = [
            MergeNode([PlacedProcedure("a", 0)]),
            MergeNode([PlacedProcedure("b", 4)]),
            MergeNode([PlacedProcedure("c", 4)]),
        ]
        affinity = WeightedGraph()
        affinity.add_edge("a", "c", 9.0)
        layout = linearize(
            nodes, program, config, affinity=affinity
        ).layout
        assert layout.start_set_of("b", config) == 4
        assert layout.start_set_of("c", config) == 4


class TestGBSCPageAffinity:
    def _context(self, config):
        program = Program.from_sizes(
            {f"p{i}": 64 for i in range(8)}
        )
        # Two temporal clusters that the cache offsets cannot express:
        # p0..p3 interleave heavily, p4..p7 interleave heavily.
        refs = (
            ["p0", "p1", "p2", "p3"] * 25
            + ["p4", "p5", "p6", "p7"] * 25
        )
        trace = full_trace(program, refs)
        return (
            PlacementContext(
                program=program,
                config=config,
                wcg=build_wcg(trace),
                trgs=build_trgs(trace, config, chunk_size=64),
                popular=tuple(program.names),
            ),
            trace,
        )

    def test_same_cache_behaviour(self, config):
        """Affinity only reorders gap ties: the cache-set mapping of
        every procedure is identical with and without it."""
        context, _ = self._context(config)
        plain = GBSCPlacement().place(context)
        affine = GBSCPlacement(page_affinity=True).place(context)
        for name in context.program.names:
            assert plain.start_set_of(name, config) == (
                affine.start_set_of(name, config)
            )

    def test_page_faults_no_worse(self, config):
        """The affinity order packs temporally-close procedures
        together, which cannot increase (and usually decreases) the
        page working set."""
        context, trace = self._context(config)
        plain = GBSCPlacement().place(context)
        affine = GBSCPlacement(page_affinity=True).place(context)
        plain_faults = page_stats(
            plain, trace, page_size=256, resident_pages=2
        ).page_faults
        affine_faults = page_stats(
            affine, trace, page_size=256, resident_pages=2
        ).page_faults
        assert affine_faults <= plain_faults
