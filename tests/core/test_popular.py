"""Tests for popular-procedure selection."""

import pytest

from repro.core.popular import select_popular
from repro.errors import ConfigError
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


@pytest.fixture
def program() -> Program:
    return Program.from_sizes({"hot": 100, "warm": 100, "cold": 100})


def make_trace(program, spec: dict[str, int]) -> Trace:
    events = []
    for name, count in spec.items():
        events.extend(
            TraceEvent.full(name, program.size_of(name))
            for _ in range(count)
        )
    return Trace(program, events)


class TestSelection:
    def test_ranked_by_executed_bytes(self, program):
        trace = make_trace(program, {"hot": 100, "warm": 10, "cold": 1})
        selection = select_popular(trace, coverage=0.9)
        assert selection.procedures[0] == "hot"

    def test_coverage_cuts_tail(self, program):
        trace = make_trace(program, {"hot": 98, "warm": 1, "cold": 1})
        selection = select_popular(trace, coverage=0.9)
        assert selection.procedures == ("hot",)
        assert selection.covered_fraction == pytest.approx(0.98)

    def test_full_coverage_includes_everything(self, program):
        trace = make_trace(program, {"hot": 5, "warm": 3, "cold": 2})
        selection = select_popular(trace, coverage=1.0)
        assert set(selection.procedures) == {"hot", "warm", "cold"}

    def test_max_procedures_cap(self, program):
        trace = make_trace(program, {"hot": 5, "warm": 4, "cold": 3})
        selection = select_popular(trace, coverage=1.0, max_procedures=2)
        assert selection.procedures == ("hot", "warm")

    def test_deterministic_tie_break(self, program):
        trace = make_trace(program, {"hot": 5, "warm": 5, "cold": 5})
        selection = select_popular(trace, coverage=1.0)
        assert selection.procedures == ("cold", "hot", "warm")

    def test_empty_trace(self, program):
        selection = select_popular(Trace(program, []))
        assert selection.procedures == ()
        assert selection.covered_fraction == 0.0

    def test_contains_and_len(self, program):
        trace = make_trace(program, {"hot": 5})
        selection = select_popular(trace)
        assert "hot" in selection
        assert "cold" not in selection
        assert len(selection) == 1

    @pytest.mark.parametrize("coverage", [0.0, -0.5, 1.5])
    def test_invalid_coverage(self, program, coverage):
        trace = make_trace(program, {"hot": 1})
        with pytest.raises(ConfigError):
            select_popular(trace, coverage=coverage)

    def test_invalid_cap(self, program):
        trace = make_trace(program, {"hot": 1})
        with pytest.raises(ConfigError):
            select_popular(trace, max_procedures=0)
