"""Tests for the Section 6 set-associative extension."""

import random

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate
from repro.core.merge import MergeNode, PlacedProcedure
from repro.core.setassoc import (
    GBSCSetAssociativePlacement,
    merge_nodes_sa,
    sa_offset_costs,
    sa_offset_costs_reference,
)
from repro.errors import PlacementError
from repro.placement.base import PlacementContext
from repro.profiles.pairdb import PairDatabase, build_pair_database
from repro.profiles.trg import build_trgs, procedure_refs
from repro.profiles.wcg import build_wcg
from repro.program.program import Program
from tests.conftest import full_trace


@pytest.fixture
def config() -> CacheConfig:
    # 8 lines, 2-way -> 4 sets.
    return CacheConfig(size=256, line_size=32, associativity=2)


class TestSACosts:
    def test_triple_overlap_costs(self, config):
        """p conflicts with {r, s} only when all three share a set."""
        program = Program.from_sizes({"p": 32, "r": 32, "s": 32})
        db = PairDatabase()
        db.record("p", ["r", "s"])
        n1 = MergeNode.single("p")
        n2 = MergeNode(
            [PlacedProcedure("r", 0), PlacedProcedure("s", 0)]
        )
        costs = sa_offset_costs(n1, n2, db, program, config)
        # All three on set 0 only at shift 0 (mod 4 sets).
        assert costs[0] == pytest.approx(1.0)
        assert np.all(costs[1:] < 1e-9)

    def test_pair_split_no_cost(self, config):
        """If r and s never share a set, no pair conflict exists."""
        program = Program.from_sizes({"p": 32, "r": 32, "s": 32})
        db = PairDatabase()
        db.record("p", ["r", "s"])
        n1 = MergeNode.single("p")
        n2 = MergeNode(
            [PlacedProcedure("r", 0), PlacedProcedure("s", 1)]
        )
        costs = sa_offset_costs(n1, n2, db, program, config)
        assert np.all(costs < 1e-9)

    def test_symmetric_direction(self, config):
        """Pairs in n1 against a block in n2 also count."""
        program = Program.from_sizes({"p": 32, "r": 32, "s": 32})
        db = PairDatabase()
        db.record("p", ["r", "s"])
        n1 = MergeNode(
            [PlacedProcedure("r", 0), PlacedProcedure("s", 0)]
        )
        n2 = MergeNode.single("p")
        costs = sa_offset_costs(n1, n2, db, program, config)
        assert costs[0] == pytest.approx(1.0)

    def test_no_records_zero_cost(self, config):
        program = Program.from_sizes({"p": 32, "q": 32})
        costs = sa_offset_costs(
            MergeNode.single("p"),
            MergeNode.single("q"),
            PairDatabase(),
            program,
            config,
        )
        assert np.all(costs == 0)

    @pytest.mark.parametrize("seed", range(5))
    def test_fast_matches_reference(self, seed, config):
        rng = random.Random(seed)
        names = [f"p{i}" for i in range(6)]
        program = Program.from_sizes(
            {name: rng.randint(16, 300) for name in names}
        )
        db = PairDatabase()
        for _ in range(20):
            p, r, s = rng.sample(names, 3)
            db.record(p, [r, s])
        split = rng.randint(1, 5)
        n1 = MergeNode(
            [
                PlacedProcedure(n, rng.randrange(config.num_lines))
                for n in names[:split]
            ]
        )
        n2 = MergeNode(
            [
                PlacedProcedure(n, rng.randrange(config.num_lines))
                for n in names[split:]
            ]
        )
        fast = sa_offset_costs(n1, n2, db, program, config)
        reference = sa_offset_costs_reference(n1, n2, db, program, config)
        assert np.allclose(fast, reference, atol=1e-6)


class TestMergeSA:
    def test_avoids_triple_conflict(self, config):
        program = Program.from_sizes({"p": 32, "r": 32, "s": 32})
        db = PairDatabase()
        db.record("p", ["r", "s"])
        n1 = MergeNode.single("p")
        n2 = MergeNode(
            [PlacedProcedure("r", 0), PlacedProcedure("s", 0)]
        )
        merged = merge_nodes_sa(n1, n2, db, program, config)
        # The chosen shift must move {r, s} off p's set.
        r_set = merged.offset_of("r") % config.num_sets
        p_set = merged.offset_of("p") % config.num_sets
        assert r_set != p_set

    def test_shared_procedure_rejected(self, config):
        program = Program.from_sizes({"p": 32})
        with pytest.raises(PlacementError):
            merge_nodes_sa(
                MergeNode.single("p"),
                MergeNode.single("p"),
                PairDatabase(),
                program,
                config,
            )


class TestPlacementSA:
    def _context(self, program, refs, config):
        trace = full_trace(program, refs)
        popular = tuple(program.names)
        pair_db, _ = build_pair_database(
            procedure_refs(trace, set(popular)),
            program.size_of,
            2 * config.size,
        )
        return PlacementContext(
            program=program,
            config=config,
            wcg=build_wcg(trace),
            trgs=build_trgs(trace, config, popular=set(popular)),
            popular=popular,
            pair_db=pair_db,
        )

    def test_produces_valid_layout(self, config):
        program = Program.from_sizes(
            {"a": 64, "b": 64, "c": 64, "d": 64}
        )
        refs = ["a", "b", "c", "a", "d", "b"] * 15
        context = self._context(program, refs, config)
        layout = GBSCSetAssociativePlacement().place(context)
        assert sorted(layout.order_by_address()) == sorted(program.names)

    def test_requires_pair_db(self, config):
        program = Program.from_sizes({"a": 64, "b": 64})
        trace = full_trace(program, ["a", "b"] * 5)
        context = PlacementContext(
            program=program,
            config=config,
            wcg=build_wcg(trace),
            trgs=build_trgs(trace, config),
            popular=tuple(program.names),
        )
        with pytest.raises(PlacementError):
            GBSCSetAssociativePlacement().place(context)

    def test_three_way_rotation_layout_quality(self, config):
        """a, b, c rotate: in a 2-way cache any two can share a set,
        but all three on one set thrash.  The SA-aware placement must
        not map all three hot blocks to the same set."""
        program = Program.from_sizes(
            {"a": 32, "b": 32, "c": 32, "pad": 32}
        )
        refs = ["a", "b", "c"] * 40
        context = self._context(program, refs, config)
        layout = GBSCSetAssociativePlacement().place(context)
        sets = [
            layout.start_set_of(name, config) for name in ("a", "b", "c")
        ]
        assert len(set(sets)) >= 2
        trace = full_trace(program, refs)
        stats = simulate(layout, trace, config)
        # All-same-set would miss on (nearly) every reference.
        assert stats.miss_ratio < 0.5

    def test_deterministic(self, config):
        program = Program.from_sizes({"a": 64, "b": 64, "c": 64})
        refs = ["a", "b", "c", "b", "a"] * 12
        context = self._context(program, refs, config)
        algo = GBSCSetAssociativePlacement()
        assert algo.place(context) == algo.place(context)
