"""Tests for the procedure-splitting extension."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate
from repro.core.splitting import (
    COLD_SUFFIX,
    chunk_execution_counts,
    split_procedures,
)
from repro.errors import ProgramError
from repro.program.procedure import ChunkId
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


@pytest.fixture
def program() -> Program:
    # 'mixed' has 4 chunks of 256 B; only the first is executed.
    return Program.from_sizes({"mixed": 1024, "hot": 256, "unused": 512})


@pytest.fixture
def trace(program) -> Trace:
    return Trace(
        program,
        [
            TraceEvent("mixed", 0, 200),
            TraceEvent.full("hot", 256),
            TraceEvent("mixed", 100, 100),
        ],
    )


class TestChunkCounts:
    def test_counts(self, trace):
        counts = chunk_execution_counts(trace, 256)
        assert counts[ChunkId("mixed", 0)] == 2
        assert counts[ChunkId("hot", 0)] == 1
        assert ChunkId("mixed", 1) not in counts


class TestSplit:
    def test_cold_part_created(self, trace):
        result = split_procedures(trace, 256)
        assert result.split_procedures == ("mixed",)
        assert result.program.size_of("mixed") == 256
        assert result.program.size_of("mixed" + COLD_SUFFIX) == 768

    def test_fully_hot_untouched(self, trace):
        result = split_procedures(trace, 256)
        assert result.program.size_of("hot") == 256
        assert ("hot" + COLD_SUFFIX) not in result.program

    def test_never_executed_untouched(self, trace):
        result = split_procedures(trace, 256)
        assert result.program.size_of("unused") == 512
        assert ("unused" + COLD_SUFFIX) not in result.program

    def test_byte_accounting(self, trace):
        result = split_procedures(trace, 256)
        assert result.hot_bytes == 256
        assert result.cold_bytes == 768
        assert (
            result.program.total_size == trace.program.total_size
        )

    def test_min_cold_bytes_skips_small_splits(self, trace):
        result = split_procedures(trace, 256, min_cold_bytes=1000)
        assert result.split_procedures == ()

    def test_negative_min_cold_rejected(self, trace):
        with pytest.raises(ProgramError):
            split_procedures(trace, 256, min_cold_bytes=-1)

    def test_original_of(self, trace):
        result = split_procedures(trace, 256)
        assert result.original_of("mixed.cold") == "mixed"
        assert result.original_of("hot") == "hot"


class TestTraceRemap:
    def test_extents_remapped_into_hot_part(self, trace):
        result = split_procedures(trace, 256)
        events = list(result.trace)
        assert events[0] == TraceEvent("mixed", 0, 200)
        assert events[2] == TraceEvent("mixed", 100, 100)

    def test_mid_procedure_hot_chunk(self):
        """Hot chunk in the middle: its extents shift to hot offset 0."""
        program = Program.from_sizes({"p": 1024})
        trace = Trace(program, [TraceEvent("p", 512, 100)] * 3)
        result = split_procedures(trace, 256)
        assert result.program.size_of("p") == 256
        for event in result.trace:
            assert event == TraceEvent("p", 0, 100)

    def test_multi_chunk_extent_stays_contiguous(self):
        """An extent spanning chunks 1-2 (both hot) remaps cleanly even
        when chunk 0 is cold."""
        program = Program.from_sizes({"p": 768})
        trace = Trace(program, [TraceEvent("p", 300, 400)] * 2)
        result = split_procedures(trace, 256)
        # Chunks 1 and 2 are hot (512 bytes); chunk 0 is cold.
        assert result.program.size_of("p") == 512
        event = result.trace[0]
        assert event.start == 300 - 256
        assert event.length == 400

    def test_remapped_trace_simulates(self, trace):
        """The split program + trace run through the whole pipeline."""
        from repro.program.layout import Layout

        result = split_procedures(trace, 256)
        config = CacheConfig(size=256, line_size=32)
        stats = simulate(
            Layout.default(result.program), result.trace, config
        )
        assert stats.fetches == simulate(
            Layout.default(trace.program), trace, config
        ).fetches

    def test_split_reduces_hot_footprint_and_misses(self):
        """The point of splitting: hot halves of many procedures fit
        the cache together after splitting where the originals thrash."""
        config = CacheConfig(size=512, line_size=32)
        # Four procedures, each 512 B, but only the first 128 B hot.
        program = Program.from_sizes({f"p{i}": 512 for i in range(4)})
        refs = []
        for _ in range(50):
            for i in range(4):
                refs.append(TraceEvent(f"p{i}", 0, 128))
        trace = Trace(program, refs)
        result = split_procedures(trace, 128)
        from repro.program.layout import Layout

        before = simulate(Layout.default(program), trace, config)
        after = simulate(
            Layout.default(result.program), result.trace, config
        )
        assert after.misses < before.misses
