"""Docstring-coverage gate for ``repro.store`` and ``repro.profiles``.

CI enforces the same contract with ruff's D1 selection (see the
``per-file-ignores`` table in pyproject.toml); ruff is not a runtime
dependency, so this stdlib AST walk keeps the gate active in tier-1
too.  Mirroring pydocstyle's D1 scope: modules, public classes, public
functions and methods (including ``__init__`` and other dunders) need
docstrings; underscore-private names and functions nested inside
functions do not.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent.parent / "src" / "repro"

#: Packages whose docstring coverage is enforced.
COVERED = ("store", "profiles")


def covered_files() -> list[Path]:
    """Every python file in the covered packages."""
    files: list[Path] = []
    for package in COVERED:
        files.extend(sorted((SRC / package).rglob("*.py")))
    assert files
    return files


def is_private(name: str) -> bool:
    """Underscore-private (but dunders like __init__ are public)."""
    return name.startswith("_") and not (
        name.startswith("__") and name.endswith("__")
    )


def undocumented(path: Path) -> list[str]:
    """Qualified names of public symbols in *path* missing docstrings."""
    tree = ast.parse(path.read_text())
    missing: list[str] = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")

    def walk(body: list[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if is_private(node.name):
                    continue
                qualified = f"{prefix}{node.name}"
                if ast.get_docstring(node) is None:
                    missing.append(qualified)
                walk(node.body, f"{qualified}.")
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if is_private(node.name):
                    continue
                if ast.get_docstring(node) is None:
                    missing.append(f"{prefix}{node.name}")
                # Functions nested inside this one are out of scope,
                # matching pydocstyle: do not recurse.

    walk(tree.body, "")
    return missing


@pytest.mark.parametrize(
    "path", covered_files(), ids=lambda p: str(p.relative_to(SRC))
)
def test_public_symbols_have_docstrings(path):
    assert undocumented(path) == []


class TestScanner:
    """The scanner itself must match the D1 scope it claims to mirror."""

    def check(self, source: str, tmp_path) -> list[str]:
        path = tmp_path / "sample.py"
        path.write_text(source)
        return undocumented(path)

    def test_missing_module_docstring(self, tmp_path):
        assert self.check("x = 1\n", tmp_path) == ["<module>"]

    def test_public_symbols_flagged(self, tmp_path):
        source = (
            '"""mod."""\n'
            "class Thing:\n"
            '    """doc."""\n'
            "    def __init__(self):\n"
            "        pass\n"
            "    def method(self):\n"
            "        pass\n"
            "def helper():\n"
            "    pass\n"
        )
        assert self.check(source, tmp_path) == [
            "Thing.__init__",
            "Thing.method",
            "helper",
        ]

    def test_private_and_nested_exempt(self, tmp_path):
        source = (
            '"""mod."""\n'
            "def _hidden():\n"
            "    pass\n"
            "class _Private:\n"
            "    def method(self):\n"
            "        pass\n"
            "def outer():\n"
            '    """doc."""\n'
            "    def inner():\n"
            "        pass\n"
            "    return inner\n"
        )
        assert self.check(source, tmp_path) == []
