"""The documentation checker (tools/check_docs.py) and the repo docs.

Runs the real checks over the real documentation as tier-1 tests, and
unit-tests the checker's detection logic against synthetic files so a
regression in the tool itself cannot silently pass CI.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestRepositoryDocs:
    def test_no_dead_links(self):
        problems = []
        for path in check_docs.markdown_files():
            problems.extend(check_docs.check_links(path))
        assert problems == []

    def test_every_package_has_an_api_section(self):
        assert check_docs.check_api_coverage() == []

    def test_required_cross_links_present(self):
        assert check_docs.check_cross_links() == []

    def test_main_exits_zero(self, capsys):
        assert check_docs.main() == 0
        assert "docs ok" in capsys.readouterr().out

    def test_store_package_is_covered(self):
        """Guards the coverage check itself: the store package must be
        discovered and therefore demanded of api.md."""
        assert "store" in check_docs.repro_packages()


class TestDetection:
    def test_dead_relative_link_is_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [other](missing.md) for details\n")
        problems = check_docs.check_links(page)
        assert len(problems) == 1
        assert "missing.md" in problems[0]

    def test_live_link_anchor_and_external_pass(self, tmp_path):
        (tmp_path / "other.md").write_text("x\n")
        page = tmp_path / "page.md"
        page.write_text(
            "[a](other.md) [b](other.md#section) "
            "[c](https://example.org/x) [d](#local)\n"
        )
        assert check_docs.check_links(page) == []

    def test_code_blocks_are_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```\n[not a link](nowhere.md)\n```\n")
        assert check_docs.check_links(page) == []
