"""Tests for the ASCII CDF renderer."""

import pytest

from repro.errors import ConfigError
from repro.eval.asciiplot import Series, ascii_cdf, sweep_panel
from repro.eval.randomization import SweepResult


class TestSeries:
    def test_glyph_must_be_single_char(self):
        with pytest.raises(ConfigError):
            Series("a", "ab", (1.0,))

    def test_values_required(self):
        with pytest.raises(ConfigError):
            Series("a", "o", ())

    def test_values_must_be_sorted(self):
        with pytest.raises(ConfigError):
            Series("a", "o", (2.0, 1.0))


class TestAsciiCdf:
    def test_contains_glyphs_and_legend(self):
        plot = ascii_cdf(
            [
                Series("PH", "o", (0.01, 0.02, 0.03)),
                Series("GBSC", "x", (0.005, 0.015, 0.025)),
            ]
        )
        assert "o" in plot
        assert "x" in plot
        assert "o = PH" in plot
        assert "x = GBSC" in plot

    def test_axis_labels_show_range(self):
        plot = ascii_cdf([Series("A", "o", (0.01, 0.05))])
        assert "1.00%" in plot
        assert "5.00%" in plot

    def test_left_series_plots_left(self):
        """A strictly better series' glyphs appear at lower columns."""
        plot = ascii_cdf(
            [
                Series("worse", "w", (0.04, 0.05, 0.06)),
                Series("better", "b", (0.01, 0.02, 0.03)),
            ],
            width=40,
            height=6,
        )
        rows = [line[6:] for line in plot.splitlines()[:6]]
        min_b = min(
            row.index("b") for row in rows if "b" in row
        )
        max_b = max(
            (len(row) - 1 - row[::-1].index("b"))
            for row in rows
            if "b" in row
        )
        min_w = min(row.index("w") for row in rows if "w" in row)
        assert min_b < min_w
        assert max_b < 40

    def test_identical_values_single_column(self):
        plot = ascii_cdf(
            [Series("flat", "f", (0.02, 0.02, 0.02))], width=20, height=4
        )
        assert "f" in plot

    def test_validation(self):
        with pytest.raises(ConfigError):
            ascii_cdf([])
        with pytest.raises(ConfigError):
            ascii_cdf([Series("a", "o", (1.0,))], width=2)

    def test_non_percent_mode(self):
        plot = ascii_cdf(
            [Series("a", "o", (1.0, 5.0))], percent=False
        )
        assert "1" in plot and "5" in plot
        assert "%" not in plot.splitlines()[-2]


class TestSweepPanel:
    def test_renders_sweep_results(self):
        results = [
            SweepResult("PH", (0.02, 0.03, 0.04), 0.03),
            SweepResult("GBSC", (0.01, 0.02, 0.03), 0.02),
        ]
        panel = sweep_panel(results)
        assert "o = PH" in panel
        assert "x = GBSC" in panel
