"""Tests for the training-input transfer matrix (Section 5.3 theme)."""

import pytest

from repro.cache.config import CacheConfig
from repro.core.gbsc import GBSCPlacement
from repro.errors import ConfigError
from repro.eval.crossval import TransferMatrix, input_transfer_matrix
from repro.trace.callgraph import CallGraphParams, random_call_graph
from repro.trace.generator import TraceInput


@pytest.fixture(scope="module")
def graph():
    return random_call_graph(
        CallGraphParams(n_procedures=60, hot_procedures=12, seed=21)
    )


@pytest.fixture(scope="module")
def matrix(graph):
    inputs = [
        TraceInput("alpha", seed=1, target_events=4000),
        TraceInput("beta", seed=2, target_events=4000, phase_skew=1.5),
        TraceInput(
            "gamma", seed=3, target_events=4000, body_scale=0.6
        ),
    ]
    return input_transfer_matrix(
        graph,
        inputs,
        CacheConfig(size=2048, line_size=32),
        GBSCPlacement(),
    )


class TestMatrix:
    def test_full_matrix(self, matrix):
        assert len(matrix.miss_rates) == 9
        for train in matrix.inputs:
            for test in matrix.inputs:
                assert 0 < matrix.rate(train, test) < 1

    def test_diagonal_generally_best_in_column(self, matrix):
        """Native training should beat (or roughly match) transfer on
        average across columns."""
        natives = []
        transfers = []
        for test in matrix.inputs:
            natives.append(matrix.self_rate(test))
            for train in matrix.inputs:
                if train != test:
                    transfers.append(matrix.rate(train, test))
        assert sum(natives) / len(natives) <= (
            sum(transfers) / len(transfers)
        ) * 1.05

    def test_transfer_penalty_definition(self, matrix):
        train, test = matrix.inputs[0], matrix.inputs[1]
        expected = matrix.rate(train, test) / matrix.self_rate(test)
        assert matrix.transfer_penalty(train, test) == pytest.approx(
            expected
        )

    def test_self_penalty_is_one(self, matrix):
        name = matrix.inputs[0]
        assert matrix.transfer_penalty(name, name) == pytest.approx(1.0)

    def test_worst_training_input_is_valid(self, matrix):
        assert matrix.worst_training_input() in matrix.inputs

    def test_format_has_all_cells(self, matrix):
        text = matrix.format()
        assert "train\\test" in text
        for name in matrix.inputs:
            assert name in text
        assert text.count("%") == 9


class TestValidation:
    def test_needs_two_inputs(self, graph):
        with pytest.raises(ConfigError):
            input_transfer_matrix(
                graph,
                [TraceInput("only", seed=1, target_events=1000)],
                CacheConfig(size=1024, line_size=32),
                GBSCPlacement(),
            )

    def test_unique_names_required(self, graph):
        inputs = [
            TraceInput("same", seed=1, target_events=1000),
            TraceInput("same", seed=2, target_events=1000),
        ]
        with pytest.raises(ConfigError):
            input_transfer_matrix(
                graph,
                inputs,
                CacheConfig(size=1024, line_size=32),
                GBSCPlacement(),
            )
