"""Tests for the end-to-end experiment pipeline."""

import pytest

from repro.cache.config import CacheConfig
from repro.eval.experiment import (
    build_context,
    run_experiment,
    run_workload_experiment,
)
from repro.placement.identity import DefaultPlacement, RandomPlacement
from repro.program.program import Program
from repro.trace.callgraph import CallGraphParams
from repro.trace.generator import TraceInput
from repro.workloads.spec import Workload
from tests.conftest import full_trace


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)


@pytest.fixture
def program() -> Program:
    return Program.from_sizes(
        {"hot1": 64, "hot2": 64, "hot3": 64, "cold": 64}
    )


@pytest.fixture
def train(program):
    refs = ["hot1", "hot2", "hot1", "hot3"] * 25 + ["cold"]
    return full_trace(program, refs)


class TestBuildContext:
    def test_contains_all_profiles(self, train, config):
        context = build_context(train, config)
        assert context.wcg.num_edges() > 0
        assert context.trgs is not None
        assert context.trgs.select.num_edges() > 0
        assert len(context.popular) > 0
        assert context.pair_db is None

    def test_popular_excludes_cold(self, train, config):
        context = build_context(train, config, coverage=0.9)
        assert "cold" not in context.popular
        assert "hot1" in context.popular

    def test_pair_db_optional(self, train, config):
        context = build_context(train, config, with_pair_db=True)
        assert context.pair_db is not None
        assert context.pair_db.total_records() > 0

    def test_max_popular_cap(self, train, config):
        context = build_context(
            train, config, coverage=1.0, max_popular=2
        )
        assert len(context.popular) == 2

    def test_chunk_size_propagates(self, train, config):
        context = build_context(train, config, chunk_size=64)
        assert context.trgs.chunk_size == 64


class TestRunExperiment:
    def test_outcomes_per_algorithm(self, train, config):
        context = build_context(train, config)
        result = run_experiment(
            context, train, [DefaultPlacement(), RandomPlacement(1)]
        )
        assert len(result.outcomes) == 2
        assert result["default"].stats.misses >= 0
        assert result["random"].algorithm == "random"

    def test_unknown_algorithm_lookup(self, train, config):
        context = build_context(train, config)
        result = run_experiment(context, train, [DefaultPlacement()])
        with pytest.raises(KeyError):
            result["nope"]

    def test_best(self, train, config):
        context = build_context(train, config)
        result = run_experiment(
            context, train, [DefaultPlacement(), RandomPlacement(1)]
        )
        assert result.best().miss_rate == min(
            o.miss_rate for o in result.outcomes
        )

    def test_miss_rates_mapping(self, train, config):
        context = build_context(train, config)
        result = run_experiment(context, train, [DefaultPlacement()])
        assert set(result.miss_rates()) == {"default"}


class TestRunWorkloadExperiment:
    @pytest.fixture
    def workload(self) -> Workload:
        params = CallGraphParams(
            n_procedures=40, hot_procedures=8, seed=77
        )
        return Workload(
            name="tiny",
            graph_params=params,
            train=TraceInput("train", seed=1, target_events=3000),
            test=TraceInput("test", seed=2, target_events=3000),
        )

    def test_runs_end_to_end(self, workload, config):
        result = run_workload_experiment(
            workload, config, [DefaultPlacement()]
        )
        assert result["default"].stats.fetches > 0

    def test_test_on_train(self, workload, config):
        """Evaluating on the training input itself (the paper's
        m88ksim same-input check) must not error and generally gives
        different numbers than train/test."""
        on_train = run_workload_experiment(
            workload, config, [DefaultPlacement()], test_on_train=True
        )
        on_test = run_workload_experiment(
            workload, config, [DefaultPlacement()]
        )
        assert (
            on_train["default"].stats.fetches
            != on_test["default"].stats.fetches
        )
