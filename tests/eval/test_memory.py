"""Tests for the memory-hierarchy analysis module."""

import pytest

from repro.cache.config import CacheConfig
from repro.errors import ConfigError
from repro.eval.memory import (
    capacity_bound_fraction,
    page_stats,
    reuse_distance_histogram,
)
from repro.program.layout import Layout
from repro.program.program import Program
from tests.conftest import full_trace


@pytest.fixture
def program() -> Program:
    return Program.from_sizes({"a": 1000, "b": 2000, "c": 3000})


class TestReuseDistances:
    def test_first_references_bucketed_separately(self, program):
        trace = full_trace(program, ["a", "b", "c"])
        histogram = reuse_distance_histogram(trace)
        assert histogram[-1] == 3
        assert sum(histogram.values()) == 3

    def test_distance_counts_distinct_bytes(self, program):
        trace = full_trace(program, ["a", "b", "c", "a"])
        histogram = reuse_distance_histogram(trace, bucket=1000)
        # a's re-reference has distance size(b) + size(c) = 5000.
        assert histogram[5] == 1

    def test_duplicates_between_counted_once(self, program):
        trace = full_trace(program, ["a", "b", "b", "b", "a"])
        histogram = reuse_distance_histogram(trace, bucket=1000)
        assert histogram[2] == 1  # 2000 bytes, not 6000

    def test_consecutive_same_procedure_ignored(self, program):
        trace = full_trace(program, ["a", "a", "a"])
        histogram = reuse_distance_histogram(trace)
        assert histogram == {-1: 1}

    def test_zero_distance(self, program):
        trace = full_trace(program, ["a", "b", "a", "b"])
        histogram = reuse_distance_histogram(trace, bucket=1000)
        # a@2: distance size(b)=2000 -> bucket 2; b@3: size(a)=1000 -> 1
        assert histogram[2] == 1
        assert histogram[1] == 1

    def test_invalid_bucket(self, program):
        trace = full_trace(program, ["a"])
        with pytest.raises(ConfigError):
            reuse_distance_histogram(trace, bucket=0)


class TestCapacityBoundFraction:
    def test_all_near(self, program):
        config = CacheConfig(size=8192, line_size=32)
        trace = full_trace(program, ["a", "b", "a", "b", "a"])
        # Distances (2000 or 1000) are well under 2 x 8192.
        assert capacity_bound_fraction(trace, config) == 0.0

    def test_far_references_counted(self):
        program = Program.from_sizes({"p": 100, "huge": 60_000})
        config = CacheConfig(size=8192, line_size=32)
        trace = full_trace(program, ["p", "huge", "p"])
        # p's re-reference crosses 60 KB > 16 KB: capacity-bound.
        assert capacity_bound_fraction(trace, config) == 1.0

    def test_no_rereferences(self, program):
        config = CacheConfig(size=8192, line_size=32)
        trace = full_trace(program, ["a", "b", "c"])
        assert capacity_bound_fraction(trace, config) == 0.0


class TestPageStats:
    def test_single_page_program(self):
        program = Program.from_sizes({"a": 100})
        trace = full_trace(program, ["a", "a", "a"])
        stats = page_stats(Layout.default(program), trace)
        assert stats.pages_touched == 1
        assert stats.page_faults == 1

    def test_lru_thrash_with_tiny_residency(self):
        program = Program.from_sizes({"a": 100, "b": 100})
        # Place a and b on different pages.
        layout = Layout(program, {"a": 0, "b": 4096})
        trace = full_trace(program, ["a", "b"] * 10)
        stats = page_stats(layout, trace, resident_pages=1)
        assert stats.page_faults == 20

    def test_residency_two_holds_both(self):
        program = Program.from_sizes({"a": 100, "b": 100})
        layout = Layout(program, {"a": 0, "b": 4096})
        trace = full_trace(program, ["a", "b"] * 10)
        stats = page_stats(layout, trace, resident_pages=2)
        assert stats.page_faults == 2

    def test_same_page_layout_never_faults_twice(self):
        program = Program.from_sizes({"a": 100, "b": 100})
        layout = Layout.default(program)  # both on page 0
        trace = full_trace(program, ["a", "b"] * 10)
        stats = page_stats(layout, trace, resident_pages=1)
        assert stats.page_faults == 1

    def test_empty_trace(self):
        program = Program.from_sizes({"a": 100})
        from repro.trace.trace import Trace

        stats = page_stats(Layout.default(program), Trace(program, []))
        assert stats.page_faults == 0
        assert stats.fault_ratio == 0.0

    def test_validation(self):
        program = Program.from_sizes({"a": 100})
        trace = full_trace(program, ["a"])
        layout = Layout.default(program)
        with pytest.raises(ConfigError):
            page_stats(layout, trace, page_size=0)
        with pytest.raises(ConfigError):
            page_stats(layout, trace, resident_pages=0)

    def test_compact_layout_pages_fewer_than_spread(self):
        """A layout scattering procedures across pages touches more
        pages and faults more under pressure — the paging concern of
        Section 4.3."""
        program = Program.from_sizes({f"p{i}": 200 for i in range(8)})
        compact = Layout.default(program)  # all 8 procs on one page
        spread = Layout(
            program, {f"p{i}": i * 8192 for i in range(8)}
        )
        refs = [f"p{i % 8}" for i in range(80)]
        trace = full_trace(program, refs)
        compact_stats = page_stats(compact, trace, resident_pages=4)
        spread_stats = page_stats(spread, trace, resident_pages=4)
        assert compact_stats.pages_touched < spread_stats.pages_touched
        assert compact_stats.page_faults < spread_stats.page_faults
