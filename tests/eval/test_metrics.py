"""Tests for conflict metrics and the Figure 6 machinery."""

import pytest

from repro.cache.config import CacheConfig
from repro.errors import ConfigError
from repro.eval.metrics import (
    damage_layout,
    pearson_r,
    trg_conflict_metric,
    wcg_conflict_metric,
)
from repro.profiles.graph import WeightedGraph
from repro.program.layout import Layout
from repro.program.procedure import ChunkId
from repro.program.program import Program


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)  # 8 lines


class TestTRGMetric:
    def test_non_overlapping_costs_zero(self, config):
        program = Program.from_sizes({"a": 64, "b": 64})
        layout = Layout.default(program)  # a lines 0-1, b lines 2-3
        graph = WeightedGraph()
        graph.add_edge(ChunkId("a", 0), ChunkId("b", 0), 10.0)
        assert trg_conflict_metric(layout, graph, config) == 0.0

    def test_overlap_pays_weight_per_shared_line(self, config):
        program = Program.from_sizes({"a": 64, "b": 64})
        layout = Layout(program, {"a": 0, "b": 256})  # full aliasing
        graph = WeightedGraph()
        graph.add_edge(ChunkId("a", 0), ChunkId("b", 0), 10.0)
        assert trg_conflict_metric(layout, graph, config) == 20.0

    def test_partial_overlap(self, config):
        program = Program.from_sizes({"a": 64, "b": 64})
        layout = Layout(program, {"a": 0, "b": 256 + 32})  # one line
        graph = WeightedGraph()
        graph.add_edge(ChunkId("a", 0), ChunkId("b", 0), 10.0)
        assert trg_conflict_metric(layout, graph, config) == 10.0

    def test_empty_graph_zero(self, config):
        program = Program.from_sizes({"a": 64})
        assert (
            trg_conflict_metric(
                Layout.default(program), WeightedGraph(), config
            )
            == 0.0
        )


class TestWCGMetric:
    def test_counts_procedure_overlap(self, config):
        program = Program.from_sizes({"a": 64, "b": 64})
        aliased = Layout(program, {"a": 0, "b": 256})
        separated = Layout.default(program)
        wcg = WeightedGraph()
        wcg.add_edge("a", "b", 5.0)
        assert wcg_conflict_metric(aliased, wcg, config) == 10.0
        assert wcg_conflict_metric(separated, wcg, config) == 0.0


class TestDamageLayout:
    @pytest.fixture
    def layout(self):
        program = Program.from_sizes({f"p{i}": 64 for i in range(10)})
        return Layout.default(program)

    def test_produces_valid_layout(self, layout, config):
        for seed in range(10):
            damaged = damage_layout(
                layout, layout.program.names, seed=seed, config=config
            )
            assert sorted(damaged.order_by_address()) == sorted(
                layout.program.names
            )

    def test_deterministic(self, layout, config):
        a = damage_layout(layout, layout.program.names, 3, config=config)
        b = damage_layout(layout, layout.program.names, 3, config=config)
        assert a == b

    def test_varies_with_seed(self, layout, config):
        layouts = {
            tuple(
                damage_layout(
                    layout, layout.program.names, seed, config=config
                ).order_by_address()
            )
            for seed in range(20)
        }
        assert len(layouts) > 1

    def test_max_moves_zero_is_identity(self, layout, config):
        damaged = damage_layout(
            layout, layout.program.names, 1, max_moves=0, config=config
        )
        assert damaged == layout

    def test_requires_config(self, layout):
        with pytest.raises(ConfigError):
            damage_layout(layout, layout.program.names, 1)

    def test_negative_moves_rejected(self, layout, config):
        with pytest.raises(ConfigError):
            damage_layout(
                layout,
                layout.program.names,
                1,
                max_moves=-1,
                config=config,
            )


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_r([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_r([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_uncorrelated_constant(self):
        assert pearson_r([1, 2, 3], [5, 5, 5]) == 0.0

    def test_matches_numpy(self):
        import numpy as np

        xs = [1.0, 4.0, 2.0, 8.0, 5.0]
        ys = [2.0, 3.0, 9.0, 1.0, 4.0]
        expected = float(np.corrcoef(xs, ys)[0, 1])
        assert pearson_r(xs, ys) == pytest.approx(expected)

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            pearson_r([1], [1, 2])

    def test_too_few_points(self):
        with pytest.raises(ConfigError):
            pearson_r([1], [2])
