"""Tests for the Figure 5 perturbation-sweep machinery."""

import pytest

from repro.cache.config import CacheConfig
from repro.eval.experiment import build_context
from repro.eval.randomization import (
    SweepResult,
    dominates,
    overlap_fraction,
    perturbation_sweep,
    summarize,
)
from repro.placement.identity import DefaultPlacement
from repro.placement.ph import PettisHansenPlacement
from repro.program.program import Program
from tests.conftest import full_trace


@pytest.fixture
def context_and_trace():
    program = Program.from_sizes(
        {"a": 96, "b": 96, "c": 96, "d": 96}
    )
    refs = ["a", "b", "a", "c", "a", "d", "b", "c"] * 20
    trace = full_trace(program, refs)
    config = CacheConfig(size=256, line_size=32)
    return build_context(trace, config), trace


class TestSweepResult:
    def test_statistics(self):
        result = SweepResult(
            algorithm="X",
            miss_rates=(0.01, 0.02, 0.03, 0.04),
            unperturbed=0.02,
        )
        assert result.best == 0.01
        assert result.worst == 0.04
        assert result.median == pytest.approx(0.025)
        assert result.mean == pytest.approx(0.025)

    def test_median_odd(self):
        result = SweepResult("X", (0.01, 0.05, 0.09), 0.05)
        assert result.median == 0.05

    def test_cdf_points(self):
        result = SweepResult("X", (0.01, 0.02), 0.01)
        assert result.cdf_points() == [(0.01, 0.5), (0.02, 1.0)]


class TestSweep:
    def test_shapes(self, context_and_trace):
        context, trace = context_and_trace
        results = perturbation_sweep(
            context,
            trace,
            [DefaultPlacement(), PettisHansenPlacement()],
            runs=4,
        )
        assert [r.algorithm for r in results] == ["default", "PH"]
        for result in results:
            assert len(result.miss_rates) == 4
            assert list(result.miss_rates) == sorted(result.miss_rates)

    def test_deterministic(self, context_and_trace):
        context, trace = context_and_trace
        kwargs = dict(runs=3, base_seed=11)
        a = perturbation_sweep(
            context, trace, [PettisHansenPlacement()], **kwargs
        )
        b = perturbation_sweep(
            context, trace, [PettisHansenPlacement()], **kwargs
        )
        assert a == b

    def test_default_placement_immune_to_perturbation(
        self, context_and_trace
    ):
        """The default layout ignores profiles entirely, so all its
        perturbed runs give the identical miss rate."""
        context, trace = context_and_trace
        (result,) = perturbation_sweep(
            context, trace, [DefaultPlacement()], runs=5
        )
        assert len(set(result.miss_rates)) == 1
        assert result.unperturbed == result.miss_rates[0]


class TestComparisons:
    def test_dominates(self):
        better = SweepResult("A", (0.01, 0.02, 0.03), 0.02)
        worse = SweepResult("B", (0.03, 0.04, 0.05), 0.04)
        assert dominates(better, worse)
        assert not dominates(worse, better)

    def test_overlap_fraction(self):
        left = SweepResult("A", (0.01, 0.03, 0.05, 0.07), 0.0)
        right = SweepResult("B", (0.04, 0.04, 0.04, 0.04), 0.0)
        # Two of left's four runs exceed right's median (0.04).
        assert overlap_fraction(left, right) == 0.5

    def test_summarize_contains_all_algorithms(self):
        results = [
            SweepResult("A", (0.01,), 0.01),
            SweepResult("B", (0.02,), 0.02),
        ]
        text = summarize(results)
        assert "A" in text and "B" in text
        assert "median" in text


class TestValidation:
    def test_zero_runs_rejected(self, context_and_trace):
        from repro.errors import ConfigError

        context, trace = context_and_trace
        with pytest.raises(ConfigError):
            perturbation_sweep(
                context, trace, [DefaultPlacement()], runs=0
            )
