"""Tests for text reporting."""

from repro.eval.randomization import SweepResult
from repro.eval.reporting import (
    Table1Row,
    format_figure5_panel,
    format_scatter,
    format_table1,
    format_table1_row,
)


def make_row(name="gcc") -> Table1Row:
    return Table1Row(
        name=name,
        total_size=2277_000,
        total_count=2005,
        popular_size=351_000,
        popular_count=136,
        train_events=33_000_000,
        test_events=45_000_000,
        default_miss_rate=0.0486,
        avg_q_size=11.8,
    )


class TestTable1:
    def test_row_contains_fields(self):
        text = format_table1_row(make_row())
        assert "gcc" in text
        assert "2005" in text
        assert "4.86%" in text
        assert "11.8" in text

    def test_table_has_header_and_rows(self):
        text = format_table1([make_row("gcc"), make_row("go")])
        lines = text.splitlines()
        assert "program" in lines[0]
        assert len(lines) == 3


class TestFigure5Panel:
    def test_panel_structure(self):
        results = [
            SweepResult("PH", (0.03, 0.04), 0.035),
            SweepResult("GBSC", (0.02, 0.025), 0.022),
        ]
        text = format_figure5_panel("perl", results)
        assert "== perl ==" in text
        assert "PH" in text
        assert "GBSC" in text
        assert "unperturbed" in text
        assert "2.2000%" in text


class TestScatter:
    def test_scatter_format(self):
        text = format_scatter("TRG metric", [(0.03, 123.0)], 0.98)
        assert "TRG metric" in text
        assert "+0.980" in text
        assert "3.0000%" in text
        assert "123.0" in text
