"""Tests for the statistical comparison tools (validated vs scipy)."""

import random

import pytest

from repro.errors import ConfigError
from repro.eval.randomization import SweepResult
from repro.eval.significance import (
    bootstrap_median_difference,
    compare_sweeps,
    mann_whitney_less,
)


class TestMannWhitney:
    def test_clear_separation_significant(self):
        a = [0.01, 0.011, 0.012, 0.013, 0.014, 0.015, 0.016, 0.017]
        b = [0.03, 0.031, 0.032, 0.033, 0.034, 0.035, 0.036, 0.037]
        result = mann_whitney_less(a, b)
        assert result.p_value < 0.01
        assert result.effect_size == 1.0
        assert result.significant

    def test_reverse_direction_not_significant(self):
        a = [0.03, 0.031, 0.032, 0.033, 0.034, 0.035, 0.036, 0.037]
        b = [0.01, 0.011, 0.012, 0.013, 0.014, 0.015, 0.016, 0.017]
        result = mann_whitney_less(a, b)
        assert result.p_value > 0.95
        assert result.effect_size == 0.0

    def test_identical_samples_inconclusive(self):
        a = [0.02] * 8
        result = mann_whitney_less(a, list(a))
        assert result.p_value == 1.0
        assert result.effect_size == 0.5

    def test_interleaved_samples_inconclusive(self):
        rng = random.Random(0)
        a = [rng.random() for _ in range(20)]
        b = [rng.random() for _ in range(20)]
        result = mann_whitney_less(a, b)
        assert result.p_value > 0.05

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = random.Random(7)
        a = [rng.gauss(0.02, 0.004) for _ in range(15)]
        b = [rng.gauss(0.025, 0.004) for _ in range(12)]
        ours = mann_whitney_less(a, b)
        theirs = scipy_stats.mannwhitneyu(
            a, b, alternative="less", method="asymptotic"
        )
        assert ours.u_statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-6)

    def test_ties_handled_like_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        a = [1.0, 2.0, 2.0, 3.0, 4.0]
        b = [2.0, 3.0, 3.0, 5.0, 5.0]
        ours = mann_whitney_less(a, b)
        theirs = scipy_stats.mannwhitneyu(
            a, b, alternative="less", method="asymptotic"
        )
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-6)

    def test_too_small_samples_rejected(self):
        with pytest.raises(ConfigError):
            mann_whitney_less([1.0], [1.0, 2.0])


class TestBootstrap:
    def test_clear_difference_excludes_zero(self):
        a = [0.01 + i * 0.001 for i in range(10)]
        b = [0.03 + i * 0.001 for i in range(10)]
        interval = bootstrap_median_difference(a, b, seed=1)
        assert interval.excludes_zero
        assert interval.low > 0

    def test_identical_distributions_include_zero(self):
        rng = random.Random(3)
        values = [rng.gauss(0.02, 0.005) for _ in range(20)]
        interval = bootstrap_median_difference(
            values, list(values), seed=2
        )
        assert not interval.excludes_zero

    def test_deterministic(self):
        a = [0.01, 0.02, 0.03]
        b = [0.02, 0.03, 0.04]
        first = bootstrap_median_difference(a, b, seed=9)
        second = bootstrap_median_difference(a, b, seed=9)
        assert first == second

    def test_validation(self):
        with pytest.raises(ConfigError):
            bootstrap_median_difference([1.0], [1.0, 2.0])
        with pytest.raises(ConfigError):
            bootstrap_median_difference(
                [1.0, 2.0], [1.0, 2.0], confidence=1.5
            )


class TestCompareSweeps:
    def test_summary_line(self):
        better = SweepResult(
            "GBSC", tuple(0.01 + i * 0.001 for i in range(10)), 0.01
        )
        worse = SweepResult(
            "PH", tuple(0.03 + i * 0.001 for i in range(10)), 0.03
        )
        line = compare_sweeps(better, worse)
        assert "GBSC vs PH" in line
        assert "significantly better" in line

    def test_overlapping_not_separable(self):
        rng = random.Random(5)
        values_a = tuple(sorted(rng.gauss(0.02, 0.005) for _ in range(10)))
        values_b = tuple(sorted(rng.gauss(0.02, 0.005) for _ in range(10)))
        line = compare_sweeps(
            SweepResult("A", values_a, 0.02),
            SweepResult("B", values_b, 0.02),
        )
        assert "not separable" in line
