"""Tests for the text visualisation helpers."""

import pytest

from repro.cache.config import CacheConfig
from repro.errors import ConfigError
from repro.eval.visualize import (
    cache_occupancy_map,
    conflict_histogram,
    layout_table,
)
from repro.program.layout import Layout
from repro.program.program import Program


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)  # 8 lines


@pytest.fixture
def layout() -> Layout:
    program = Program.from_sizes({"a": 64, "b": 64})
    # a on lines 0-1; b aliases onto lines 0-1 too (address 256).
    return Layout(program, {"a": 0, "b": 256})


class TestOccupancyMap:
    def test_overlap_shows_two(self, layout, config):
        grid = cache_occupancy_map(layout, config, width=8)
        assert grid == "22......"

    def test_subset_of_procedures(self, layout, config):
        grid = cache_occupancy_map(layout, config, ["a"], width=8)
        assert grid == "11......"

    def test_rows_wrap_at_width(self, layout, config):
        grid = cache_occupancy_map(layout, config, width=4)
        assert grid.splitlines() == ["22..", "...."]

    def test_saturates_at_hash(self, config):
        program = Program.from_sizes({f"p{i}": 32 for i in range(12)})
        layout = Layout(
            program, {f"p{i}": i * 256 for i in range(12)}
        )  # all alias line 0
        grid = cache_occupancy_map(layout, config, width=8)
        assert grid[0] == "#"

    def test_invalid_width(self, layout, config):
        with pytest.raises(ConfigError):
            cache_occupancy_map(layout, config, width=0)


class TestLayoutTable:
    def test_contains_addresses_and_sets(self, layout, config):
        text = layout_table(layout, config)
        assert "a" in text and "b" in text
        assert "256" in text
        assert "0..1" in text

    def test_limit(self, config):
        program = Program.from_sizes({f"p{i}": 32 for i in range(30)})
        layout = Layout.default(program)
        text = layout_table(layout, config, limit=5)
        assert len(text.splitlines()) == 6  # header + 5


class TestConflictHistogram:
    def test_histogram(self, layout, config):
        histogram = conflict_histogram(layout, config)
        assert histogram == {0: 6, 2: 2}

    def test_empty_selection(self, layout, config):
        histogram = conflict_histogram(layout, config, [])
        assert histogram == {0: 8}
