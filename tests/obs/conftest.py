"""Fixtures for the observability tests.

Every test in this package runs with the global observability state
saved and restored, so tests that enable/disable freely cannot leak
state into the rest of the suite (or into the CI-wide run session
installed by ``tests/conftest.py``).
"""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def isolated_obs() -> Iterator[None]:
    previous = runtime.current()
    runtime.disable()
    try:
        yield
    finally:
        runtime.restore(previous)
