"""Counters, gauges and histogram bucket arithmetic."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_to_dict(self):
        counter = Counter("c")
        counter.inc(3)
        assert counter.to_dict() == {"kind": "counter", "value": 3}


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("g")
        assert gauge.value is None
        gauge.set(1)
        gauge.set(7)
        assert gauge.to_dict() == {"kind": "gauge", "value": 7}


class TestHistogram:
    def test_empty_edges_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", [])

    def test_non_increasing_edges_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", [1, 1, 2])

    def test_bucket_edges_are_inclusive_upper(self):
        # bucket i is (edges[i-1], edges[i]]; the last is overflow.
        histogram = Histogram("h", [10, 20])
        histogram.observe(10)  # on the first edge -> bucket 0
        histogram.observe(11)  # just above -> bucket 1
        histogram.observe(20)  # on the second edge -> bucket 1
        histogram.observe(21)  # above all edges -> overflow
        assert histogram.counts == [1, 2, 1]

    def test_count_sum_min_max(self):
        histogram = Histogram("h", [100])
        for value in (5, 50, 500):
            histogram.observe(value)
        data = histogram.to_dict()
        assert data["count"] == 3
        assert data["sum"] == 555
        assert data["min"] == 5
        assert data["max"] == 500
        assert data["counts"] == [2, 1]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ObservabilityError):
            registry.gauge("a")
        with pytest.raises(ObservabilityError):
            registry.histogram("a", [1])

    def test_histogram_needs_edges_on_first_use(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.histogram("h")
        registry.histogram("h", [1, 2])
        # later lookups need no edges
        registry.histogram("h").observe(1)

    def test_snapshot_is_sorted_and_json_shaped(self):
        registry = MetricsRegistry()
        registry.gauge("z.gauge").set(1.5)
        registry.counter("a.counter").inc(2)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a.counter", "z.gauge"]
        assert snapshot["a.counter"] == {"kind": "counter", "value": 2}


class TestMergeSnapshot:
    """Cross-process shard folding: counters add, gauges last-write-
    wins, histograms add bucket-wise (the parallel runner's merge)."""

    @staticmethod
    def shard() -> dict:
        other = MetricsRegistry()
        other.counter("c").inc(3)
        other.gauge("g").set(7)
        histogram = other.histogram("h", [10, 20])
        histogram.observe(5)
        histogram.observe(15)
        histogram.observe(25)
        return other.snapshot()

    def test_merge_into_empty_registry(self):
        registry = MetricsRegistry()
        registry.merge_snapshot(self.shard())
        assert registry.snapshot() == self.shard()

    def test_counters_add(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(10)
        registry.merge_snapshot(self.shard())
        assert registry.counter("c").value == 13

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        registry.merge_snapshot(self.shard())
        assert registry.gauge("g").value == 7

    def test_none_gauge_does_not_clobber(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        registry.merge_snapshot(
            {"g": {"kind": "gauge", "value": None}}
        )
        assert registry.gauge("g").value == 1

    def test_histograms_add_bucketwise(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", [10, 20])
        histogram.observe(1)
        registry.merge_snapshot(self.shard())
        data = registry.histogram("h").to_dict()
        assert data["counts"] == [2, 1, 1]
        assert data["count"] == 4
        assert data["sum"] == 46
        assert data["min"] == 1
        assert data["max"] == 25

    def test_merge_twice_doubles(self):
        registry = MetricsRegistry()
        registry.merge_snapshot(self.shard())
        registry.merge_snapshot(self.shard())
        assert registry.counter("c").value == 6
        assert registry.histogram("h").to_dict()["count"] == 6

    def test_mismatched_histogram_edges_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", [1, 2]).observe(1)
        with pytest.raises(ObservabilityError):
            registry.merge_snapshot(self.shard())

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("c").set(1)
        with pytest.raises(ObservabilityError):
            registry.merge_snapshot(self.shard())

    def test_unknown_kind_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.merge_snapshot({"x": {"kind": "summary"}})
