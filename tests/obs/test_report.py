"""The ``report`` subcommand and its manifest rendering."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.eval.reporting import format_manifest_report
from repro.obs import MANIFEST_FORMAT, MANIFEST_VERSION


@pytest.fixture
def manifest() -> dict:
    return {
        "type": "manifest",
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "command": "place",
        "config": {"algorithm": "gbsc"},
        "git": "abc1234",
        "unix_time": 0.0,
        "elapsed": 0.15,
        "timings": [
            {
                "name": "build_context",
                "start": 0.0,
                "duration": 0.1,
                "attributes": {"events": 2500},
                "children": [
                    {"name": "build_wcg", "start": 0.01, "duration": 0.04}
                ],
            },
            {"name": "place", "start": 0.1, "duration": 0.05},
        ],
        "metrics": {
            "cache.sim.misses": {"kind": "counter", "value": 2739},
            "cache.sim.last_miss_rate": {"kind": "gauge", "value": 0.0126},
            "gap.sizes": {
                "kind": "histogram",
                "edges": [32, 256],
                "counts": [1, 2, 0],
                "count": 3,
                "sum": 300,
                "min": 10,
                "max": 200,
            },
        },
    }


class TestFormatManifestReport:
    def test_golden_shape(self, manifest):
        text = format_manifest_report(manifest, width=10)
        lines = text.splitlines()
        assert lines[0] == "run: place  (git abc1234)  elapsed 150.0ms"
        assert lines[1] == "config: algorithm=gbsc"
        assert "phases:" in lines
        assert "timings:" in lines
        assert "metrics:" in lines
        # The longest phase fills the bar; the shorter one is scaled.
        bars = [l for l in lines if "|" in l]
        assert "build_context |##########" in bars[0]
        assert "place         |#####" in bars[1]
        # Nested span is indented under its parent with attributes.
        assert "  build_context: 100.0ms  (events=2500)" in lines
        assert "    build_wcg: 40.0ms" in lines
        # Metrics table renders each kind.
        assert any(
            "cache.sim.misses" in l and "counter" in l and "2739" in l
            for l in lines
        )
        assert any(
            "gap.sizes" in l and "histogram" in l and "count=3" in l
            for l in lines
        )

    def test_empty_sections_are_omitted(self):
        text = format_manifest_report(
            {"command": "x", "elapsed": 0.0, "timings": [], "metrics": {}}
        )
        assert "phases:" not in text
        assert "metrics:" not in text
        assert "workers:" not in text

    def test_worker_metrics_get_their_own_section(self, manifest):
        """``--workers`` manifests label merged shards per worker
        instead of dumping them into the flat metric list."""
        manifest["metrics"].update(
            {
                "runner.worker.tasks": {"kind": "counter", "value": 5},
                "runner.worker.0.tasks": {"kind": "counter", "value": 3},
                "runner.worker.0.seconds": {
                    "kind": "counter", "value": 1.5,
                },
                "runner.worker.1.tasks": {"kind": "counter", "value": 2},
                "runner.worker.1.seconds": {
                    "kind": "counter", "value": 0.25,
                },
                "runner.worker.phase.simulate.seconds": {
                    "kind": "counter", "value": 0.75,
                },
            }
        )
        text = format_manifest_report(manifest)
        lines = text.splitlines()
        assert "workers:" in lines
        assert "  5 pool task(s) across 2 worker(s)" in lines
        assert "  worker 0: 3 task(s) in 1.50s" in lines
        assert "  worker 1: 2 task(s) in 250.0ms" in lines
        assert "  merged phase time:" in lines
        assert "    simulate: 750.0ms" in lines
        # The flat metrics section no longer mentions worker counters.
        metrics_at = lines.index("metrics:")
        workers_at = lines.index("workers:")
        flat = lines[metrics_at:workers_at]
        assert not any("runner.worker" in line for line in flat)
        # ...but still renders the pipeline's own counters.
        assert any("cache.sim.misses" in line for line in flat)

    def test_exception_terminated_span_is_flagged(self, manifest):
        """A phase that died mid-run renders with its error attached
        instead of masquerading as a completed phase."""
        manifest["timings"][0]["children"][0]["error"] = "TraceError"
        manifest["timings"][0]["error"] = "TraceError"
        text = format_manifest_report(manifest)
        flagged = [l for l in text.splitlines() if "[error: TraceError]" in l]
        assert len(flagged) == 2
        assert any("build_context" in line for line in flagged)
        assert any("build_wcg" in line for line in flagged)

    def test_real_aborted_run_reports_its_error(self, tmp_path):
        """End to end: a span body that raises still yields a manifest
        whose report shows the failed phase."""
        from repro import obs
        from repro.obs import RunSession, runtime

        previous = runtime.current()
        session = RunSession("r", with_git=False)
        try:
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("boom")
            manifest = session.finish()
        finally:
            runtime.restore(previous)
        text = format_manifest_report(manifest)
        assert "doomed" in text
        assert "[error: ValueError]" in text

    def test_store_hit_rate_is_derived(self, manifest):
        manifest["metrics"]["store.hit"] = {"kind": "counter", "value": 3}
        manifest["metrics"]["store.miss"] = {"kind": "counter", "value": 1}
        text = format_manifest_report(manifest)
        assert "store.hit_rate: 75.0% (3 of 4 lookups)" in text

    def test_store_hit_rate_guards_zero_accesses(self, manifest):
        manifest["metrics"]["store.hit"] = {"kind": "counter", "value": 0}
        manifest["metrics"]["store.miss"] = {"kind": "counter", "value": 0}
        text = format_manifest_report(manifest)
        assert "store.hit_rate: n/a (no store accesses)" in text

    def test_no_hit_rate_line_without_store_counters(self, manifest):
        assert "store.hit_rate" not in format_manifest_report(manifest)

    def test_profile_section_is_summarised(self, manifest):
        manifest["profile"] = {
            "clock": "monotonic",
            "functions": {
                "repro.core.gbsc.place": {
                    "calls": 1, "cum": 0.5, "self": 0.2,
                }
            },
        }
        text = format_manifest_report(manifest)
        assert "profile: 1 repro.* function(s) sampled" in text
        assert "perf profile" in text


class TestReportCommand:
    def test_renders_run_file(self, tmp_path, capsys, manifest):
        run = tmp_path / "run.jsonl"
        span = {"type": "span", "name": "place", "depth": 0,
                "start": 0.1, "duration": 0.05}
        run.write_text(
            json.dumps(span) + "\n" + json.dumps(manifest) + "\n"
        )
        assert main(["report", str(run)]) == 0
        out = capsys.readouterr().out
        assert "run: place" in out
        assert "cache.sim.misses" in out

    def test_manifest_less_file_exits_2(self, tmp_path, capsys):
        run = tmp_path / "run.jsonl"
        run.write_text('{"type": "span", "name": "a"}\n')
        assert main(["report", str(run)]) == 2
        assert "no run manifest" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
