"""The global switch: no-op by default, identical results on or off."""

from __future__ import annotations

from repro import obs
from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate
from repro.core.gbsc import GBSCPlacement
from repro.eval.experiment import build_context
from repro.obs import runtime
from repro.workloads.suite import by_name


class TestSwitch:
    def test_disabled_by_default_in_this_fixture(self):
        assert not runtime.is_enabled()
        assert runtime.current() is None

    def test_facades_are_noops_when_disabled(self):
        obs.inc("some.counter", 5)
        obs.set_gauge("some.gauge", 1)
        obs.observe("some.histogram", 3, edges=[1, 10])
        with obs.span("phase", attr=1):
            pass
        assert runtime.current() is None

    def test_disabled_span_is_shared_null_object(self):
        assert obs.span("a") is obs.span("b")

    def test_enable_records_then_disable_stops(self):
        state = runtime.enable()
        obs.inc("c", 2)
        with obs.span("phase"):
            pass
        assert state.registry.counter("c").value == 2
        assert [r.name for r in state.tracer.roots] == ["phase"]
        runtime.disable()
        obs.inc("c", 100)
        assert state.registry.counter("c").value == 2

    def test_enable_installs_fresh_state_each_time(self):
        first = runtime.enable()
        second = runtime.enable()
        assert first is not second
        assert runtime.current() is second

    def test_restore_reinstates_a_saved_state(self):
        saved = runtime.enable()
        runtime.disable()
        runtime.restore(saved)
        assert runtime.current() is saved


class TestIdentity:
    def test_gbsc_results_identical_with_obs_on_and_off(self):
        """Instrumentation watches the pipeline; it must never steer it."""
        workload = by_name("m88ksim").scaled(0.02)
        config = CacheConfig(size=8192, line_size=32)

        def run():
            train = workload.trace("train")
            context = build_context(train, config)
            layout = GBSCPlacement().place(context)
            stats = simulate(layout, train, config)
            return dict(layout.items()), stats.misses

        runtime.disable()
        addresses_off, misses_off = run()
        runtime.enable()
        addresses_on, misses_on = run()
        runtime.disable()
        assert addresses_on == addresses_off
        assert misses_on == misses_off
