"""JSONL sinks, run sessions and manifest round-trips."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.analysis import audit_manifest, audit_run_path, load_run_manifest
from repro.errors import ObservabilityError
from repro.obs import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    JsonlSink,
    RunSession,
    runtime,
)


class TestJsonlSink:
    def test_lazy_open_leaves_no_file_without_events(self, tmp_path):
        path = tmp_path / "sub" / "run.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()

    def test_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "run.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "span", "name": "a"})
        sink.emit({"type": "span", "name": "b"})
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl")
        sink.close()
        with pytest.raises(ObservabilityError):
            sink.emit({"type": "span"})


class TestRunSession:
    def test_writes_span_events_then_manifest(self, tmp_path):
        out = tmp_path / "run.jsonl"
        session = RunSession(
            "test-run", config={"k": 1}, metrics_out=out, with_git=False
        )
        with obs.span("phase", attr="x"):
            obs.inc("events", 3)
        manifest = session.finish()
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert [line["type"] for line in lines] == ["span", "manifest"]
        assert lines[0]["name"] == "phase"
        assert lines[0]["attributes"] == {"attr": "x"}
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["command"] == "test-run"
        assert manifest["config"] == {"k": 1}
        assert manifest["metrics"]["events"]["value"] == 3
        assert load_run_manifest(out) == lines[-1]

    def test_finish_is_idempotent(self, tmp_path):
        session = RunSession("r", with_git=False)
        first = session.finish()
        assert session.finish() is first

    def test_restores_previous_state(self):
        outer = runtime.enable()
        session = RunSession("inner", with_git=False)
        assert runtime.current() is session.state
        assert runtime.current() is not outer
        session.finish()
        assert runtime.current() is outer

    def test_trace_out_gets_spans_but_no_manifest(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        with RunSession("r", trace_out=out, with_git=False):
            with obs.span("phase"):
                pass
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert [line["type"] for line in lines] == ["span"]

    def test_manifest_from_real_run_audits_clean(self, tmp_path, gbsc_run):
        out = tmp_path / "run.jsonl"
        manifest = gbsc_run(out)
        assert audit_manifest(manifest) == []
        assert audit_run_path(out) == []

    def test_miss_counters_reconcile_with_cache_stats(
        self, tmp_path, gbsc_run
    ):
        manifest = gbsc_run(tmp_path / "run.jsonl")
        metrics = manifest["metrics"]
        accesses = metrics["cache.sim.accesses"]["value"]
        misses = metrics["cache.sim.misses"]["value"]
        hits = metrics["cache.sim.hits"]["value"]
        assert misses + hits == accesses
        assert misses <= accesses

    def test_timing_tree_covers_the_pipeline_phases(
        self, tmp_path, gbsc_run
    ):
        manifest = gbsc_run(tmp_path / "run.jsonl")

        def names(nodes):
            for node in nodes:
                yield node["name"]
                yield from names(node.get("children") or [])

        spans = set(names(manifest["timings"]))
        assert {
            "gen_trace",
            "build_context",
            "build_trgs",
            "place",
            "gbsc_merge",
            "linearize",
            "simulate",
        } <= spans


@pytest.fixture
def gbsc_run(tmp_path):
    """Run a small end-to-end GBSC pipeline under a RunSession and
    return the manifest."""

    def run(out):
        from repro.cache.config import CacheConfig
        from repro.cache.simulator import simulate
        from repro.core.gbsc import GBSCPlacement
        from repro.eval.experiment import build_context
        from repro.workloads.spec import clear_trace_memo
        from repro.workloads.suite import by_name

        # Traces are memoised module-wide; force regeneration so the
        # gen_trace span lands inside this session's timing tree.
        clear_trace_memo()
        workload = by_name("m88ksim").scaled(0.02)
        config = CacheConfig(size=8192, line_size=32)
        session = RunSession("gbsc-test", metrics_out=out, with_git=False)
        try:
            train = workload.trace("train")
            context = build_context(train, config)
            with obs.span("place", algorithm="GBSC"):
                layout = GBSCPlacement().place(context)
            simulate(layout, train, config)
        finally:
            manifest = session.finish()
        return manifest

    return run
