"""Span nesting, exception safety and listener ordering."""

from __future__ import annotations

import pytest

from repro.obs import Tracer


class TestNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert [r.name for r in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner", "sibling"]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]
        assert tracer.depth == 0

    def test_attributes_recorded(self):
        tracer = Tracer()
        with tracer.span("phase", workload="m88ksim", events=100):
            pass
        record = tracer.roots[0]
        assert record.attributes == {"workload": "m88ksim", "events": 100}

    def test_durations_accumulate_to_total(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert tracer.total_time() == pytest.approx(
            sum(r.duration for r in tracer.roots)
        )
        assert all(r.duration >= 0 for r in tracer.roots)


class TestExceptionSafety:
    def test_error_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        record = tracer.roots[0]
        assert record.error == "ValueError"
        assert record.duration >= 0
        assert tracer.depth == 0

    def test_stack_unwinds_through_nested_failure(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError
        outer = tracer.roots[0]
        assert outer.error == "RuntimeError"
        assert outer.children[0].error == "RuntimeError"
        # A fresh span can still open afterwards.
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["outer", "after"]


class TestListeners:
    def test_fired_child_before_parent_with_depth(self):
        tracer = Tracer()
        seen: list[tuple[str, int]] = []
        tracer.add_listener(
            lambda record, depth: seen.append((record.name, depth))
        )
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert seen == [("inner", 1), ("outer", 0)]

    def test_to_dict_nests_children(self):
        tracer = Tracer()
        with tracer.span("outer", k="v"):
            with tracer.span("inner"):
                pass
        data = tracer.roots[0].to_dict()
        assert data["name"] == "outer"
        assert data["attributes"] == {"k": "v"}
        assert data["children"][0]["name"] == "inner"
        assert "children" not in data["children"][0]
