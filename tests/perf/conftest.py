"""Fixtures for the perf-lab tests.

Same isolation contract as ``tests/obs``: every test runs with the
global observability state saved and restored, so profiling sessions
cannot leak a ``sys.setprofile`` hook or an enabled runtime into the
rest of the suite.
"""

from __future__ import annotations

import sys
from typing import Iterator

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def isolated_obs() -> Iterator[None]:
    previous = runtime.current()
    hook = sys.getprofile()
    runtime.disable()
    try:
        yield
    finally:
        sys.setprofile(hook)
        runtime.restore(previous)


@pytest.fixture
def manifest_pair() -> tuple[dict, dict]:
    """Two hand-built manifests with known drift between them."""
    a = {
        "type": "manifest",
        "format": "repro/manifest",
        "version": 1,
        "command": "place",
        "config": {"algorithm": "gbsc", "runs": 5},
        "git": "aaa1111",
        "unix_time": 0.0,
        "elapsed": 2.0,
        "timings": [
            {
                "name": "build_context",
                "duration": 1.0,
                "children": [{"name": "build_wcg", "duration": 0.4}],
            },
            {"name": "simulate", "duration": 0.5},
            {"name": "simulate", "duration": 0.25},
        ],
        "metrics": {
            "cache.sim.misses": {"kind": "counter", "value": 100},
            "queue.depth": {"kind": "gauge", "value": 4},
            "gap.sizes": {
                "kind": "histogram",
                "edges": [32, 256],
                "counts": [1, 2, 0],
                "count": 3,
                "sum": 300,
            },
            "a.only": {"kind": "counter", "value": 1},
        },
    }
    b = {
        "type": "manifest",
        "format": "repro/manifest",
        "version": 1,
        "command": "place",
        "config": {"algorithm": "gbsc", "runs": 9, "seed": 7},
        "git": "bbb2222",
        "unix_time": 0.0,
        "elapsed": 3.0,
        "timings": [
            {
                "name": "build_context",
                "duration": 1.5,
                "children": [{"name": "build_wcg", "duration": 0.6}],
            },
            {"name": "simulate", "duration": 0.5},
            {"name": "report", "duration": 0.1},
        ],
        "metrics": {
            "cache.sim.misses": {"kind": "counter", "value": 150},
            "queue.depth": {"kind": "gauge", "value": 2},
            "gap.sizes": {
                "kind": "histogram",
                "edges": [32, 256],
                "counts": [2, 2, 1],
                "count": 5,
                "sum": 700,
            },
            "b.only": {"kind": "counter", "value": 1},
        },
    }
    return a, b
