"""Regression gating (``repro.obs.perf.baseline``)."""

from __future__ import annotations

import json

import pytest

from repro.errors import PerfError
from repro.obs.perf import (
    BASELINES_FORMAT,
    BASELINES_VERSION,
    check_records,
    format_checks,
    load_baselines,
)


def baselines_payload(**rules: dict) -> dict:
    return {
        "format": BASELINES_FORMAT,
        "version": BASELINES_VERSION,
        "benches": {"bench": {"metrics": rules}},
    }


def write_baselines(tmp_path, payload: dict):
    path = tmp_path / "baselines.json"
    path.write_text(json.dumps(payload))
    return path


def latest_for(**metrics: float) -> dict:
    return {"bench": {"bench": "bench", "metrics": metrics}}


class TestLoadBaselines:
    def test_round_trip(self, tmp_path):
        payload = baselines_payload(
            m={"baseline": 1.0, "direction": "lower", "tolerance": 0.1}
        )
        assert load_baselines(write_baselines(tmp_path, payload)) == payload

    def test_missing_file(self, tmp_path):
        with pytest.raises(PerfError, match="not found"):
            load_baselines(tmp_path / "baselines.json")

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda p: p.update(format="x"), "unexpected format"),
            (lambda p: p.update(version=99), "unsupported baselines version"),
            (lambda p: p.update(benches=[]), "'benches' must be an object"),
            (
                lambda p: p["benches"].update(bad={}),
                "must declare a 'metrics' object",
            ),
            (
                lambda p: p["benches"]["bench"]["metrics"].update(m2=3),
                "rule must be an object",
            ),
            (
                lambda p: p["benches"]["bench"]["metrics"]["m"].update(
                    baseline="fast"
                ),
                "'baseline' must be a finite number",
            ),
            (
                lambda p: p["benches"]["bench"]["metrics"]["m"].update(
                    direction="sideways"
                ),
                "'direction' must be one of",
            ),
            (
                lambda p: p["benches"]["bench"]["metrics"]["m"].update(
                    tolerance=-0.1
                ),
                "'tolerance' must be a non-negative number",
            ),
        ],
    )
    def test_every_defect_raises_with_location(
        self, tmp_path, mutate, message
    ):
        payload = baselines_payload(
            m={"baseline": 1.0, "direction": "lower", "tolerance": 0.0}
        )
        mutate(payload)
        with pytest.raises(PerfError, match=message):
            load_baselines(write_baselines(tmp_path, payload))

    def test_unparseable_json(self, tmp_path):
        path = tmp_path / "baselines.json"
        path.write_text("{nope")
        with pytest.raises(PerfError, match="unparseable"):
            load_baselines(path)


class TestCheckRecords:
    @staticmethod
    def check_one(rule: dict, latest: float | None):
        baselines = baselines_payload(m=rule)
        records = latest_for(m=latest) if latest is not None else {}
        (check,) = check_records(baselines, records)
        return check

    @pytest.mark.parametrize(
        "direction, latest, status",
        [
            # lower is better, baseline 1.0, tolerance 0.1 → band
            # [0.9, 1.1]; above regresses, below improves.
            ("lower", 1.05, "ok"),
            ("lower", 1.2, "regression"),
            ("lower", 0.5, "improved"),
            # higher is better: the band flips.
            ("higher", 0.95, "ok"),
            ("higher", 0.5, "regression"),
            ("higher", 1.5, "improved"),
        ],
    )
    def test_direction_and_tolerance_semantics(
        self, direction, latest, status
    ):
        rule = {"baseline": 1.0, "direction": direction, "tolerance": 0.1}
        check = self.check_one(rule, latest)
        assert check.status == status
        assert check.failed == (status == "regression")

    def test_zero_tolerance_is_exact(self):
        rule = {"baseline": 1.0, "direction": "lower", "tolerance": 0.0}
        assert self.check_one(rule, 1.0).status == "ok"
        assert self.check_one(rule, 1.0000001).status == "regression"

    def test_bench_without_record_yields_missing_rows(self):
        rule = {"baseline": 1.0, "direction": "lower", "tolerance": 0.0}
        check = self.check_one(rule, None)
        assert check.status == "missing"
        assert check.failed
        assert check.latest is None

    def test_metric_dropped_from_record_is_missing(self):
        baselines = baselines_payload(
            gone={"baseline": 1.0, "direction": "lower"}
        )
        (check,) = check_records(baselines, latest_for(other=2.0))
        assert check.status == "missing"

    def test_extra_ledger_metrics_are_ignored(self):
        baselines = baselines_payload(
            m={"baseline": 1.0, "direction": "lower"}
        )
        checks = check_records(baselines, latest_for(m=1.0, extra=9.9))
        assert [c.metric for c in checks] == ["m"]

    def test_rows_sorted_by_bench_then_metric(self):
        baselines = {
            "format": BASELINES_FORMAT,
            "version": BASELINES_VERSION,
            "benches": {
                "z": {"metrics": {"b": {"baseline": 1, "direction": "lower"},
                                  "a": {"baseline": 1, "direction": "lower"}}},
                "a": {"metrics": {"m": {"baseline": 1, "direction": "lower"}}},
            },
        }
        checks = check_records(baselines, {})
        assert [(c.bench, c.metric) for c in checks] == [
            ("a", "m"), ("z", "a"), ("z", "b")
        ]

    def test_bound_property(self):
        lower = self.check_one(
            {"baseline": 2.0, "direction": "lower", "tolerance": 0.5}, 1.0
        )
        assert lower.bound == 3.0
        higher = self.check_one(
            {"baseline": 2.0, "direction": "higher", "tolerance": 0.5}, 1.0
        )
        assert higher.bound == 1.0


class TestFormatChecks:
    def test_verdict_lines(self):
        rule = {"baseline": 1.0, "direction": "lower", "tolerance": 0.1}
        ok = check_records(baselines_payload(m=rule), latest_for(m=1.0))
        assert "OK: 1 gated metrics within tolerance" in format_checks(ok)
        bad = check_records(baselines_payload(m=rule), latest_for(m=2.0))
        text = format_checks(bad)
        assert "FAIL: 1 of 1 gated metrics regressed" in text
        assert "[regression]" in text
        assert "lower is better" in text

    def test_empty_baselines(self):
        assert "no gated metrics" in format_checks([])

    def test_deterministic(self):
        rule = {"baseline": 1.0, "direction": "higher", "tolerance": 0.0}
        checks = check_records(baselines_payload(m=rule), latest_for(m=0.5))
        assert format_checks(checks) == format_checks(checks)
