"""The ``repro-layout perf {record,diff,check,profile}`` family."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main
from repro.obs import RunSession
from repro.obs.perf import (
    BASELINES_FORMAT,
    BASELINES_VERSION,
    append_record,
    bench_record,
    read_history,
)


def make_run(path: Path, *, profile: bool = False):
    """Write a real run file via a RunSession and return its manifest."""
    session = RunSession(
        "place",
        config={"algorithm": "gbsc"},
        metrics_out=path,
        with_git=False,
        profile=profile,
    )
    with obs.span("phase"):
        obs.inc("events", 2)
    return session.finish()


@pytest.fixture
def ledger(tmp_path) -> Path:
    path = tmp_path / "HISTORY.jsonl"
    append_record(path, bench_record("table1:gcc", {"miss_rate": 0.040}))
    append_record(path, bench_record("table1:gcc", {"miss_rate": 0.041}))
    return path


def write_baselines(tmp_path, miss_rate: float, tolerance: float) -> Path:
    path = tmp_path / "baselines.json"
    path.write_text(json.dumps({
        "format": BASELINES_FORMAT,
        "version": BASELINES_VERSION,
        "benches": {
            "table1:gcc": {
                "metrics": {
                    "miss_rate": {
                        "baseline": miss_rate,
                        "direction": "lower",
                        "tolerance": tolerance,
                    }
                }
            }
        },
    }))
    return path


class TestPerfRecord:
    def test_records_inline_metrics(self, tmp_path, capsys):
        history = tmp_path / "HISTORY.jsonl"
        assert main([
            "perf", "record", "bench:x",
            "--metric", "miss_rate=0.04", "--metric", "wall_s=1.5",
            "--history", str(history),
        ]) == 0
        assert "recorded bench:x: 2 metric(s)" in capsys.readouterr().out
        (record,) = read_history(history)
        assert record["metrics"] == {"miss_rate": 0.04, "wall_s": 1.5}
        assert set(record["host"]) == {"cpu_count", "platform", "python"}

    def test_records_from_json_file(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        metrics.write_text('{"nested": {"rate": 0.5}, "label": "gcc"}')
        history = tmp_path / "HISTORY.jsonl"
        assert main([
            "perf", "record", "bench:x",
            "--from-json", str(metrics), "--history", str(history),
        ]) == 0
        (record,) = read_history(history)
        assert record["metrics"] == {"nested.rate": 0.5}

    def test_bad_metric_exits_2(self, tmp_path, capsys):
        assert main([
            "perf", "record", "b", "--metric", "rate=fast",
            "--history", str(tmp_path / "h.jsonl"),
        ]) == 2
        assert "not a number" in capsys.readouterr().err

    def test_no_metrics_exits_2(self, tmp_path, capsys):
        assert main([
            "perf", "record", "b",
            "--history", str(tmp_path / "h.jsonl"),
        ]) == 2


class TestPerfDiff:
    def test_two_run_files(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        make_run(a)
        make_run(b)
        assert main(["perf", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "manifest diff: a=place" in out
        assert "events" in out

    def test_json_output_is_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        make_run(a)
        make_run(b)
        assert main(["perf", "diff", str(a), str(b), "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["perf", "diff", str(a), str(b), "--json"]) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["format"] == "repro/manifest-diff"

    def test_history_mode_diffs_last_two_records(self, ledger, capsys):
        assert main(["perf", "diff", "--history", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "record diff: a=table1:gcc" in out
        assert "miss_rate" in out

    def test_history_mode_bench_filter(self, ledger, capsys):
        append_record(
            ledger, bench_record("other", {"miss_rate": 1.0})
        )
        assert main([
            "perf", "diff", "--history", str(ledger),
            "--bench", "table1:gcc",
        ]) == 0
        assert "a=table1:gcc" in capsys.readouterr().out

    def test_history_mode_needs_two_records(self, tmp_path, capsys):
        history = tmp_path / "HISTORY.jsonl"
        append_record(history, bench_record("b", {"x": 1.0}))
        assert main(["perf", "diff", "--history", str(history)]) == 2
        assert "at least two records" in capsys.readouterr().err

    def test_wrong_arity_exits_2(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        make_run(a)
        assert main(["perf", "diff", str(a)]) == 2

    def test_report_diff_is_a_thin_frontend(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        make_run(a)
        make_run(b)
        assert main(["perf", "diff", str(a), str(b)]) == 0
        via_perf = capsys.readouterr().out
        assert main(["report", "--diff", str(a), str(b)]) == 0
        assert capsys.readouterr().out == via_perf

    def test_report_diff_needs_both_files(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        make_run(a)
        assert main(["report", "--diff", str(a)]) == 2
        assert "diff mode needs both" in capsys.readouterr().err


class TestPerfCheck:
    def test_clean_baseline_exits_0(self, tmp_path, ledger, capsys):
        baselines = write_baselines(tmp_path, 0.040, tolerance=0.05)
        assert main([
            "perf", "check", "--history", str(ledger),
            "--baselines", str(baselines),
        ]) == 0
        out = capsys.readouterr().out
        assert "OK: 1 gated metrics within tolerance" in out

    def test_synthetic_slowdown_exits_1(self, tmp_path, ledger, capsys):
        """The regression fixture: inject a 50% slowdown on top of a
        recorded baseline and require the gate to trip."""
        baselines = write_baselines(tmp_path, 0.040, tolerance=0.05)
        append_record(
            ledger, bench_record("table1:gcc", {"miss_rate": 0.060})
        )
        assert main([
            "perf", "check", "--history", str(ledger),
            "--baselines", str(baselines),
        ]) == 1
        out = capsys.readouterr().out
        assert "[regression]" in out
        assert "FAIL: 1 of 1 gated metrics" in out

    def test_dropped_metric_exits_1(self, tmp_path, ledger, capsys):
        baselines = write_baselines(tmp_path, 0.040, tolerance=0.05)
        append_record(ledger, bench_record("table1:gcc", {"other": 1.0}))
        assert main([
            "perf", "check", "--history", str(ledger),
            "--baselines", str(baselines),
        ]) == 1
        assert "[   missing]" in capsys.readouterr().out

    def test_missing_baselines_file_exits_1(self, tmp_path, ledger, capsys):
        assert main([
            "perf", "check", "--history", str(ledger),
            "--baselines", str(tmp_path / "nope.json"),
        ]) == 1
        assert "perf/baseline-missing" in capsys.readouterr().out

    def test_corrupt_ledger_exits_1_via_findings(self, tmp_path, capsys):
        history = tmp_path / "HISTORY.jsonl"
        history.write_text("{not json\n")
        baselines = write_baselines(tmp_path, 0.040, tolerance=0.05)
        assert main([
            "perf", "check", "--history", str(history),
            "--baselines", str(baselines),
        ]) == 1
        assert "perf/history-parse" in capsys.readouterr().out

    def test_missing_ledger_exits_2(self, tmp_path, capsys):
        assert main([
            "perf", "check",
            "--history", str(tmp_path / "nope.jsonl"),
            "--baselines", str(tmp_path / "nope.json"),
        ]) == 2


class TestPerfProfile:
    def test_renders_profiled_manifest(self, tmp_path, capsys):
        run = tmp_path / "run.jsonl"
        make_run(run, profile=True)
        assert main(["perf", "profile", str(run)]) == 0
        out = capsys.readouterr().out
        assert "profile (monotonic clock" in out
        assert "repro." in out

    def test_limit_flag(self, tmp_path, capsys):
        run = tmp_path / "run.jsonl"
        make_run(run, profile=True)
        assert main(["perf", "profile", str(run), "--limit", "1"]) == 0
        assert "more functions elided" in capsys.readouterr().out

    def test_unprofiled_manifest_exits_2(self, tmp_path, capsys):
        run = tmp_path / "run.jsonl"
        make_run(run)
        assert main(["perf", "profile", str(run)]) == 2
        assert "--profile" in capsys.readouterr().err


class TestProfileFlagPlumbing:
    def test_obs_commands_accept_profile_flag(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "place", "t.npz", "-o", "l.json", "--profile",
        ])
        assert args.profile is True
