"""Structural manifest diffing (``repro.obs.perf.diff``)."""

from __future__ import annotations

import json

import pytest

from repro.obs.perf import diff_manifests, diff_metric_maps, format_diff
from repro.obs.perf.diff import DIFF_FORMAT, DIFF_VERSION, format_record_diff


class TestDiffManifests:
    def test_payload_identity_and_elapsed(self, manifest_pair):
        a, b = manifest_pair
        diff = diff_manifests(a, b)
        assert diff["format"] == DIFF_FORMAT
        assert diff["version"] == DIFF_VERSION
        assert diff["commands"] == ["place", "place"]
        assert diff["git"] == ["aaa1111", "bbb2222"]
        assert diff["elapsed"] == {
            "a": 2.0, "b": 3.0, "delta": 1.0, "ratio": 1.5
        }

    def test_config_drift(self, manifest_pair):
        diff = diff_manifests(*manifest_pair)
        assert diff["config"] == {
            "added": {"seed": 7},
            "removed": {},
            "changed": {"runs": [5, 9]},
        }

    def test_timing_nodes_align_by_name_and_occurrence(
        self, manifest_pair
    ):
        diff = diff_manifests(*manifest_pair)
        by_name = {}
        for node in diff["timings"]:
            by_name.setdefault(node["name"], []).append(node)
        (context,) = by_name["build_context"]
        assert context["status"] == "both"
        assert context["delta"] == 0.5
        assert context["ratio"] == 1.5
        (child,) = context["children"]
        assert child["name"] == "build_wcg"
        assert child["delta"] == pytest.approx(0.2)
        # Two 'simulate' spans in a, one in b: first pairs, second is
        # a-only; b's extra 'report' span comes back b-only.
        first, second = by_name["simulate"]
        assert (first["status"], first["delta"]) == ("both", 0.0)
        assert (second["status"], second["b"]) == ("a-only", None)
        (report,) = by_name["report"]
        assert (report["status"], report["a"]) == ("b-only", None)

    def test_metric_deltas_by_kind(self, manifest_pair):
        metrics = diff_manifests(*manifest_pair)["metrics"]
        assert metrics["cache.sim.misses"]["delta"] == 50
        assert metrics["cache.sim.misses"]["ratio"] == 1.5
        assert metrics["queue.depth"]["delta"] == -2
        histogram = metrics["gap.sizes"]
        assert histogram["kind"] == "histogram"
        assert histogram["delta"] == {"count": 2, "sum": 400}
        assert metrics["a.only"]["status"] == "a-only"
        assert metrics["b.only"]["status"] == "b-only"

    def test_kind_mismatch_is_reported_not_merged(self):
        a = {"metrics": {"m": {"kind": "counter", "value": 1}}}
        b = {"metrics": {"m": {"kind": "gauge", "value": 1}}}
        entry = diff_manifests(a, b)["metrics"]["m"]
        assert entry == {
            "status": "kind-mismatch",
            "a_kind": "counter",
            "b_kind": "gauge",
        }

    def test_zero_base_ratio_is_none(self):
        a = {"elapsed": 0.0}
        b = {"elapsed": 1.0}
        assert diff_manifests(a, b)["elapsed"]["ratio"] is None

    def test_error_annotations_survive(self):
        a = {"timings": [{"name": "phase", "duration": 1.0}]}
        b = {
            "timings": [
                {"name": "phase", "duration": 2.0, "error": "ValueError"}
            ]
        }
        (node,) = diff_manifests(a, b)["timings"]
        assert node["errors"] == ["ValueError"]

    def test_diff_is_byte_deterministic(self, manifest_pair):
        a, b = manifest_pair
        first = json.dumps(diff_manifests(a, b), sort_keys=True)
        second = json.dumps(diff_manifests(a, b), sort_keys=True)
        assert first == second
        assert format_diff(diff_manifests(a, b)) == format_diff(
            diff_manifests(a, b)
        )


class TestFormatDiff:
    def test_leads_with_identity_and_config_drift(self, manifest_pair):
        text = format_diff(diff_manifests(*manifest_pair))
        lines = text.splitlines()
        assert lines[0].startswith(
            "manifest diff: a=place (git aaa1111) vs b=place (git bbb2222)"
        )
        drift = text.index("config drift")
        assert drift < text.index("timings (a -> b):")
        assert "runs: a=5 b=9" in text
        assert "only in b: seed=7" in text

    def test_marks_one_sided_spans(self, manifest_pair):
        text = format_diff(diff_manifests(*manifest_pair))
        assert "simulate [a only]:" in text
        assert "report [b only]:" in text

    def test_no_drift_section_for_identical_configs(self, manifest_pair):
        a, _ = manifest_pair
        text = format_diff(diff_manifests(a, a))
        assert "config drift" not in text

    def test_histogram_row(self, manifest_pair):
        text = format_diff(diff_manifests(*manifest_pair))
        assert (
            "gap.sizes  histogram  count 3 -> 5 (delta 2), "
            "sum 300 -> 700 (delta 400)" in text
        )


class TestDiffMetricMaps:
    def test_flat_map_diff(self):
        diffed = diff_metric_maps(
            {"miss_rate": 0.04, "gone": 1.0},
            {"miss_rate": 0.05, "new": 2.0},
        )
        assert diffed["miss_rate"]["delta"] == 0.05 - 0.04
        assert diffed["miss_rate"]["ratio"] == 0.05 / 0.04
        assert diffed["gone"]["status"] == "a-only"
        assert diffed["new"]["status"] == "b-only"
        assert list(diffed) == sorted(diffed)


class TestFormatRecordDiff:
    @staticmethod
    def record(git: str, host: dict, **metrics: float) -> dict:
        return {
            "bench": "table1:gcc",
            "git": git,
            "host": host,
            "metrics": metrics,
        }

    def test_warns_on_host_drift(self):
        host_a = {"cpu_count": 1}
        host_b = {"cpu_count": 8}
        text = format_record_diff(
            self.record("aaa", host_a, miss_rate=0.04),
            self.record("bbb", host_b, miss_rate=0.05),
        )
        assert "host drift" in text
        assert "NOT comparable" in text

    def test_same_host_has_no_warning(self):
        host = {"cpu_count": 1}
        text = format_record_diff(
            self.record("aaa", host, miss_rate=0.04),
            self.record("bbb", host, miss_rate=0.05),
        )
        assert "host drift" not in text
        assert "miss_rate" in text
