"""The benchmark history ledger (``repro.obs.perf.history``)."""

from __future__ import annotations

import json

import pytest

from repro.errors import PerfError
from repro.obs.perf import (
    HISTORY_FORMAT,
    HISTORY_NAME,
    HISTORY_VERSION,
    append_record,
    bench_record,
    flatten_metrics,
    host_fingerprint,
    is_history_file,
    latest_records,
    read_history,
)


class TestHostFingerprint:
    def test_shape(self):
        host = host_fingerprint()
        assert set(host) == {"cpu_count", "platform", "python"}
        assert host["cpu_count"] >= 1
        assert json.dumps(host)  # JSON-serialisable


class TestFlattenMetrics:
    def test_nested_keys_join_with_dots(self):
        flat = flatten_metrics(
            {"a": 1, "nested": {"b": 2.5, "deeper": {"c": 3}}}
        )
        assert flat == {"a": 1.0, "nested.b": 2.5, "nested.deeper.c": 3.0}

    def test_non_numeric_leaves_dropped(self):
        flat = flatten_metrics(
            {"rate": 0.5, "label": "gcc", "ok": True, "none": None}
        )
        assert flat == {"rate": 0.5}


class TestBenchRecord:
    def test_record_shape(self):
        record = bench_record("table1:gcc", {"miss_rate": 0.04})
        assert record["format"] == HISTORY_FORMAT
        assert record["version"] == HISTORY_VERSION
        assert record["bench"] == "table1:gcc"
        assert record["metrics"] == {"miss_rate": 0.04}
        assert set(record["host"]) == {"cpu_count", "platform", "python"}
        assert isinstance(record["unix_time"], float)

    def test_empty_bench_id_rejected(self):
        with pytest.raises(PerfError):
            bench_record("", {"miss_rate": 0.04})

    def test_no_numeric_metrics_rejected(self):
        with pytest.raises(PerfError, match="no numeric metrics"):
            bench_record("b", {"label": "gcc"})


class TestLedgerRoundTrip:
    def test_append_then_read(self, tmp_path):
        path = tmp_path / HISTORY_NAME
        first = bench_record("b1", {"x": 1.0})
        second = bench_record("b2", {"x": 2.0})
        append_record(path, first)
        append_record(path, second)
        assert read_history(path) == [first, second]

    def test_lines_are_sorted_json(self, tmp_path):
        path = tmp_path / HISTORY_NAME
        append_record(path, bench_record("b", {"z": 1.0, "a": 2.0}))
        (line,) = path.read_text().splitlines()
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_append_refuses_foreign_records(self, tmp_path):
        with pytest.raises(PerfError, match="refusing to append"):
            append_record(tmp_path / HISTORY_NAME, {"bench": "b"})

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(PerfError, match="not found"):
            read_history(tmp_path / HISTORY_NAME)

    @pytest.mark.parametrize(
        "line, message",
        [
            ("{not json", "unparseable"),
            ("[1, 2]", "not an object"),
            ('{"format": "other/format"}', "unexpected format"),
            (
                json.dumps({"format": HISTORY_FORMAT, "version": 99}),
                "unsupported ledger version",
            ),
        ],
    )
    def test_read_is_strict(self, tmp_path, line, message):
        path = tmp_path / HISTORY_NAME
        path.write_text(line + "\n")
        with pytest.raises(PerfError, match=message):
            read_history(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / HISTORY_NAME
        append_record(path, bench_record("b", {"x": 1.0}))
        path.open("a").write("\n\n")
        assert len(read_history(path)) == 1


class TestLatestRecords:
    def test_last_record_per_bench_wins(self):
        records = [
            {"bench": "a", "metrics": {"x": 1.0}},
            {"bench": "b", "metrics": {"x": 2.0}},
            {"bench": "a", "metrics": {"x": 3.0}},
        ]
        latest = latest_records(records)
        assert latest["a"]["metrics"] == {"x": 3.0}
        assert latest["b"]["metrics"] == {"x": 2.0}

    def test_nameless_records_ignored(self):
        assert latest_records([{"metrics": {}}, {"bench": ""}]) == {}


class TestIsHistoryFile:
    def test_canonical_name_matches(self, tmp_path):
        assert is_history_file(tmp_path / HISTORY_NAME)

    def test_content_sniffing(self, tmp_path):
        path = tmp_path / "other.jsonl"
        append_record(path, bench_record("b", {"x": 1.0}))
        assert is_history_file(path)

    def test_run_manifest_is_not_a_ledger(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"format": "repro/manifest", "type": "span"}\n')
        assert not is_history_file(path)

    def test_garbage_never_raises(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_bytes(b"\xff\xfe{not json")
        assert not is_history_file(path)
