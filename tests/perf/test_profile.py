"""Opt-in deterministic profiling (``repro.obs.perf.profile``)."""

from __future__ import annotations

import json
import sys

import pytest

from repro import obs
from repro.errors import PerfError
from repro.obs import RunSession
from repro.obs.perf import PROFILE_CLOCK, Profiler, format_profile
from repro.obs.perf.history import flatten_metrics
from repro.obs.runtime import Observability


def make_profiler() -> Profiler:
    return Profiler(Observability().tracer)


class TestProfilerLifecycle:
    def test_install_uninstall_restores_previous_hook(self):
        sentinel = lambda *a: None  # noqa: E731
        sys.setprofile(sentinel)
        profiler = make_profiler()
        profiler.install()
        assert sys.getprofile() is not sentinel
        profiler.uninstall()
        assert sys.getprofile() is sentinel
        sys.setprofile(None)

    def test_install_is_idempotent(self):
        profiler = make_profiler()
        profiler.install()
        profiler.install()
        profiler.uninstall()
        profiler.uninstall()
        assert sys.getprofile() is None


class TestProfilerSampling:
    def test_samples_only_inside_spans(self):
        session = RunSession("r", with_git=False, profile=True)
        # Outside any span: the scope gate drops the sample.
        flatten_metrics({"x": 1})
        with obs.span("phase"):
            flatten_metrics({"x": 1, "nested": {"y": 2}})
        manifest = session.finish()
        functions = manifest["profile"]["functions"]
        key = "repro.obs.perf.history.flatten_metrics"
        assert key in functions
        # One top-level call inside the span plus one recursive call
        # for the nested mapping; the unscoped call is not counted.
        assert functions[key]["calls"] == 2
        assert functions[key]["cum"] >= functions[key]["self"] >= 0

    def test_recursion_charges_cum_once(self):
        session = RunSession("r", with_git=False, profile=True)
        with obs.span("phase"):
            deep = {"a": {"b": {"c": {"d": 1.0}}}}
            flatten_metrics(deep)
        manifest = session.finish()
        stats = manifest["profile"]["functions"][
            "repro.obs.perf.history.flatten_metrics"
        ]
        assert stats["calls"] == 4
        # Cumulative counts the outermost activation once, so self
        # (summed over all activations) cannot exceed it by much more
        # than clock jitter — the exponential-double-charge bug would
        # make cum several times self here.
        assert stats["cum"] <= stats["self"] * 4

    def test_non_repro_functions_are_not_attributed(self):
        session = RunSession("r", with_git=False, profile=True)
        with obs.span("phase"):
            json.dumps({"x": 1})
        manifest = session.finish()
        for key in manifest["profile"]["functions"]:
            assert key == "repro" or key.startswith("repro.")

    def test_snapshot_structure_is_sorted(self):
        session = RunSession("r", with_git=False, profile=True)
        with obs.span("phase"):
            flatten_metrics({"x": 1})
        profile = session.finish()["profile"]
        assert profile["clock"] == PROFILE_CLOCK
        keys = list(profile["functions"])
        assert keys == sorted(keys)
        for stats in profile["functions"].values():
            assert set(stats) == {"calls", "cum", "self"}


class TestOffModeIdentity:
    def test_manifest_has_no_profile_key_when_off(self):
        session = RunSession("r", with_git=False)
        with obs.span("phase"):
            flatten_metrics({"x": 1})
        manifest = session.finish()
        assert "profile" not in manifest

    def test_no_hook_installed_when_off(self):
        assert sys.getprofile() is None
        session = RunSession("r", with_git=False)
        assert sys.getprofile() is None
        session.finish()

    def test_off_mode_manifests_are_byte_identical(self, tmp_path):
        """Two unprofiled runs differ only in measured times, and the
        *set of keys* matches a run made before this module existed —
        the 'profile' section is absent, not empty."""

        def run(path):
            session = RunSession(
                "r", config={"k": 1}, metrics_out=path, with_git=False
            )
            with obs.span("phase"):
                obs.inc("events")
            return session.finish()

        a = run(tmp_path / "a.jsonl")
        b = run(tmp_path / "b.jsonl")
        assert sorted(a) == sorted(b)
        assert "profile" not in a


class TestFormatProfile:
    @staticmethod
    def profile(count: int) -> dict:
        return {
            "clock": PROFILE_CLOCK,
            "functions": {
                f"repro.mod.fn{i:03}": {
                    "calls": 1,
                    "cum": float(count - i),
                    "self": 0.5,
                }
                for i in range(count)
            },
        }

    def test_hottest_first_with_elision(self):
        text = format_profile(self.profile(30), limit=25)
        lines = text.splitlines()
        assert "30 functions" in lines[0]
        assert "repro.mod.fn000" in lines[2]  # hottest row first
        assert lines[-1] == "  ... 5 more functions elided"

    def test_empty_profile_notes_no_samples(self):
        text = format_profile({"functions": {}})
        assert "no samples" in text

    def test_missing_functions_section_raises(self):
        with pytest.raises(PerfError, match="no usable profile"):
            format_profile({"clock": PROFILE_CLOCK})

    def test_deterministic(self):
        profile = self.profile(5)
        assert format_profile(profile) == format_profile(profile)
