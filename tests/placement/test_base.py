"""Tests for the PlacementContext and protocol."""

import pytest

from repro.cache.config import CacheConfig
from repro.errors import PlacementError
from repro.placement.base import PlacementAlgorithm, PlacementContext
from repro.placement.identity import DefaultPlacement
from repro.profiles.graph import WeightedGraph
from repro.profiles.trg import TRGBuildStats, TRGPair
from repro.program.program import Program


@pytest.fixture
def program() -> Program:
    return Program.from_sizes({"a": 100, "b": 100, "c": 100})


def make_context(program, popular=("a", "b"), trgs=True) -> PlacementContext:
    wcg = WeightedGraph()
    wcg.add_edge("a", "b", 10.0)
    trg_pair = None
    if trgs:
        select = WeightedGraph()
        select.add_edge("a", "b", 5.0)
        place = WeightedGraph()
        stats = TRGBuildStats(refs_processed=2, avg_q_entries=1.0)
        trg_pair = TRGPair(
            select=select,
            place=place,
            select_stats=stats,
            place_stats=stats,
            chunk_size=256,
        )
    return PlacementContext(
        program=program,
        config=CacheConfig(size=256, line_size=32),
        wcg=wcg,
        trgs=trg_pair,
        popular=popular,
    )


class TestContext:
    def test_unknown_popular_rejected(self, program):
        with pytest.raises(PlacementError):
            make_context(program, popular=("ghost",))

    def test_popular_set(self, program):
        context = make_context(program)
        assert context.popular_set == {"a", "b"}

    def test_unpopular_in_program_order(self, program):
        context = make_context(program)
        assert context.unpopular() == ["c"]

    def test_require_trgs(self, program):
        context = make_context(program, trgs=False)
        with pytest.raises(PlacementError):
            context.require_trgs()

    def test_require_pair_db(self, program):
        context = make_context(program)
        with pytest.raises(PlacementError):
            context.require_pair_db()

    def test_perturbed_changes_all_graphs(self, program):
        context = make_context(program)
        noisy = context.perturbed(0.5, seed=3)
        assert noisy.wcg != context.wcg
        assert noisy.trgs.select != context.trgs.select
        assert noisy.program is context.program
        assert noisy.popular == context.popular

    def test_perturbed_zero_scale_identity(self, program):
        context = make_context(program)
        noisy = context.perturbed(0.0, seed=3)
        assert noisy.wcg == context.wcg
        assert noisy.trgs.select == context.trgs.select

    def test_perturbed_deterministic(self, program):
        context = make_context(program)
        assert (
            context.perturbed(0.1, seed=3).wcg
            == context.perturbed(0.1, seed=3).wcg
        )

    def test_perturbed_without_trgs(self, program):
        context = make_context(program, trgs=False)
        noisy = context.perturbed(0.1, seed=1)
        assert noisy.trgs is None


class TestProtocol:
    def test_default_placement_satisfies_protocol(self):
        assert isinstance(DefaultPlacement(), PlacementAlgorithm)
