"""Contract tests: every placement algorithm honours the same rules.

Any object implementing :class:`~repro.placement.base
.PlacementAlgorithm` must (a) produce a valid layout covering every
procedure, (b) be deterministic for identical inputs, (c) not mutate
the context it was given, and (d) expose a stable ``name``.  Running
the whole roster through one parametrized file keeps future algorithms
honest.
"""

import pytest

from repro.cache.config import CacheConfig
from repro.core.gbsc import GBSCPlacement
from repro.core.setassoc import GBSCSetAssociativePlacement
from repro.eval.experiment import build_context
from repro.placement.hkc import HashemiKaeliCalderPlacement
from repro.placement.identity import DefaultPlacement, RandomPlacement
from repro.placement.localsearch import TRGOptimizerPlacement
from repro.placement.logical import LogicalCachePlacement
from repro.placement.ph import PettisHansenPlacement
from repro.trace.patterns import full_body_trace, round_robin
from repro.program.program import Program

ALGORITHMS = [
    DefaultPlacement(),
    RandomPlacement(seed=3),
    PettisHansenPlacement(),
    HashemiKaeliCalderPlacement(),
    GBSCPlacement(),
    GBSCPlacement(page_affinity=True),
    GBSCSetAssociativePlacement(),
    TRGOptimizerPlacement(seed=1),
    LogicalCachePlacement(),
]


@pytest.fixture(scope="module")
def context():
    program = Program.from_sizes(
        {f"p{i}": 48 + 16 * (i % 5) for i in range(12)}
    )
    refs = round_robin([f"p{i}" for i in range(6)], 30) + round_robin(
        [f"p{i}" for i in range(6, 12)], 5
    )
    trace = full_body_trace(program, refs)
    return build_context(
        trace,
        CacheConfig(size=256, line_size=32),
        with_pair_db=True,
        coverage=1.0,
    )


@pytest.mark.parametrize(
    "algorithm",
    ALGORITHMS,
    ids=[f"{i}-{a.name}" for i, a in enumerate(ALGORITHMS)],
)
class TestPlacementContract:
    def test_layout_covers_program(self, algorithm, context):
        layout = algorithm.place(context)
        assert sorted(layout.order_by_address()) == sorted(
            context.program.names
        )

    def test_deterministic(self, algorithm, context):
        assert algorithm.place(context) == algorithm.place(context)

    def test_name_is_stable_string(self, algorithm, context):
        assert isinstance(algorithm.name, str)
        assert algorithm.name

    def test_context_not_mutated(self, algorithm, context):
        wcg_before = context.wcg.copy()
        select_before = context.trgs.select.copy()
        algorithm.place(context)
        assert context.wcg == wcg_before
        assert context.trgs.select == select_before


def test_algorithm_names_unique():
    names = [a.name for a in ALGORITHMS]
    # Two GBSC configurations intentionally share a name; the rest
    # must be unique.
    assert len(set(names)) == len(names) - 1
