"""Tests for the HKC cache-line-colouring implementation."""

import pytest

from repro.cache.config import CacheConfig
from repro.placement.base import PlacementContext
from repro.placement.hkc import HashemiKaeliCalderPlacement, hkc_order
from repro.profiles.graph import WeightedGraph
from repro.program.layout import Layout
from repro.program.program import Program


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)  # 8 lines


def make_context(program, wcg, config, popular=()) -> PlacementContext:
    return PlacementContext(
        program=program,
        config=config,
        wcg=wcg,
        popular=popular,
    )


class TestColouring:
    def test_heaviest_pair_does_not_overlap(self, config):
        """The defining property: the heaviest caller/callee pair get
        disjoint cache lines (both fit in the cache)."""
        program = Program.from_sizes({"a": 100, "b": 100, "c": 100})
        wcg = WeightedGraph()
        wcg.add_edge("a", "b", 100.0)
        order, gaps = hkc_order(program, wcg, config)
        layout = Layout.from_order(program, order, gaps_before=gaps)
        assert not (
            layout.cache_sets_of("a", config)
            & layout.cache_sets_of("b", config)
        )

    def test_all_neighbours_avoided_when_possible(self, config):
        """p calls q and r; q and r each fit beside p without
        overlapping p or each other (total fits in the cache)."""
        program = Program.from_sizes({"p": 64, "q": 64, "r": 64})
        wcg = WeightedGraph()
        wcg.add_edge("p", "q", 100.0)
        wcg.add_edge("p", "r", 90.0)
        order, gaps = hkc_order(program, wcg, config)
        layout = Layout.from_order(program, order, gaps_before=gaps)
        sets_p = layout.cache_sets_of("p", config)
        sets_q = layout.cache_sets_of("q", config)
        sets_r = layout.cache_sets_of("r", config)
        assert not (sets_p & sets_q)
        assert not (sets_p & sets_r)
        assert not (sets_q & sets_r)

    def test_overlap_unavoidable_when_oversized(self, config):
        """A procedure larger than the cache must overlap something;
        the algorithm still terminates and produces a valid layout."""
        program = Program.from_sizes({"big": 512, "b": 64})
        wcg = WeightedGraph()
        wcg.add_edge("big", "b", 10.0)
        order, gaps = hkc_order(program, wcg, config)
        layout = Layout.from_order(program, order, gaps_before=gaps)
        assert sorted(layout.order_by_address()) == ["b", "big"]


class TestStructure:
    def test_all_procedures_placed(self, config):
        program = Program.from_sizes({f"p{i}": 50 for i in range(12)})
        wcg = WeightedGraph()
        wcg.add_edge("p0", "p1", 10.0)
        wcg.add_edge("p1", "p2", 8.0)
        wcg.add_edge("p5", "p6", 20.0)
        order, gaps = hkc_order(program, wcg, config)
        assert sorted(order) == sorted(program.names)

    def test_unpopular_trail(self, config):
        program = Program.from_sizes({"hot1": 64, "hot2": 64, "cold": 64})
        wcg = WeightedGraph()
        wcg.add_edge("hot1", "hot2", 10.0)
        wcg.add_edge("hot1", "cold", 5.0)
        order, _ = hkc_order(
            program, wcg, config, popular={"hot1", "hot2"}
        )
        assert order[-1] == "cold"

    def test_isolated_popular_still_placed(self, config):
        program = Program.from_sizes({"a": 64, "b": 64, "lone": 64})
        wcg = WeightedGraph()
        wcg.add_edge("a", "b", 10.0)
        wcg.add_node("lone")
        order, _ = hkc_order(
            program, wcg, config, popular={"a", "b", "lone"}
        )
        assert "lone" in order

    def test_deterministic(self, config):
        import random

        program = Program.from_sizes({f"p{i}": 70 for i in range(15)})
        wcg = WeightedGraph()
        rng = random.Random(1)
        for _ in range(30):
            a, b = rng.sample(program.names, 2)
            wcg.add_edge(a, b, rng.randint(1, 50))
        assert hkc_order(program, wcg, config) == hkc_order(
            program, wcg, config
        )

    def test_placement_produces_valid_layout(self, config):
        program = Program.from_sizes({f"p{i}": 90 for i in range(8)})
        wcg = WeightedGraph()
        wcg.add_edge("p0", "p1", 9.0)
        wcg.add_edge("p2", "p0", 4.0)
        layout = HashemiKaeliCalderPlacement().place(
            make_context(program, wcg, config)
        )
        assert sorted(layout.order_by_address()) == sorted(program.names)

    def test_name(self):
        assert HashemiKaeliCalderPlacement().name == "HKC"
