"""Focused tests for HKC's compound-merging and fallback paths."""

import pytest

from repro.cache.config import CacheConfig
from repro.placement.hkc import hkc_order
from repro.profiles.graph import WeightedGraph
from repro.program.layout import Layout
from repro.program.program import Program


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)  # 8 lines


def build_layout(program, wcg, config, popular=None):
    order, gaps = hkc_order(program, wcg, config, popular)
    return Layout.from_order(program, order, gaps_before=gaps)


class TestCompoundMerging:
    def test_merge_two_compounds_avoids_edge_overlap(self, config):
        """Four procedures pair up into two compounds first; the edge
        that finally joins the compounds must not overlap its
        endpoints."""
        program = Program.from_sizes(
            {"a": 64, "b": 64, "c": 64, "d": 64}
        )
        wcg = WeightedGraph()
        wcg.add_edge("a", "b", 100.0)  # compound 1
        wcg.add_edge("c", "d", 90.0)  # compound 2
        wcg.add_edge("b", "c", 50.0)  # merge step
        layout = build_layout(program, wcg, config)
        assert not (
            layout.cache_sets_of("b", config)
            & layout.cache_sets_of("c", config)
        )

    def test_same_compound_edge_is_noop(self, config):
        """An edge inside an existing compound must not corrupt it."""
        program = Program.from_sizes({"a": 64, "b": 64, "c": 64})
        wcg = WeightedGraph()
        wcg.add_edge("a", "b", 100.0)
        wcg.add_edge("b", "c", 90.0)
        wcg.add_edge("a", "c", 80.0)  # all three already together
        layout = build_layout(program, wcg, config)
        assert sorted(layout.order_by_address()) == ["a", "b", "c"]

    def test_second_endpoint_placed_first(self, config):
        """Edge whose q is placed but p is not exercises the mirrored
        append path."""
        program = Program.from_sizes({"a": 64, "b": 64, "c": 64})
        wcg = WeightedGraph()
        wcg.add_edge("a", "b", 100.0)
        wcg.add_edge("c", "b", 90.0)  # c unplaced, b placed
        layout = build_layout(program, wcg, config)
        assert not (
            layout.cache_sets_of("c", config)
            & layout.cache_sets_of("b", config)
        )

    def test_oversized_cache_pressure_falls_back(self, config):
        """When no conflict-free offset exists, the least-overlap
        fallback must still terminate with a valid layout."""
        program = Program.from_sizes(
            {f"p{i}": 256 for i in range(4)}  # each fills the cache
        )
        wcg = WeightedGraph()
        wcg.add_edge("p0", "p1", 10.0)
        wcg.add_edge("p1", "p2", 9.0)
        wcg.add_edge("p2", "p3", 8.0)
        layout = build_layout(program, wcg, config)
        assert sorted(layout.order_by_address()) == sorted(program.names)


class TestCompoundOrdering:
    def test_heavier_compound_leads(self, config):
        program = Program.from_sizes(
            {"hot1": 32, "hot2": 32, "mild1": 32, "mild2": 32}
        )
        wcg = WeightedGraph()
        wcg.add_edge("hot1", "hot2", 1000.0)
        wcg.add_edge("mild1", "mild2", 1.0)
        layout = build_layout(program, wcg, config)
        assert layout.address_of("hot1") < layout.address_of("mild1")

    def test_compound_base_is_cache_aligned(self, config):
        program = Program.from_sizes({"a": 100, "b": 100, "c": 100})
        wcg = WeightedGraph()
        wcg.add_edge("a", "b", 10.0)
        wcg.add_edge("c", "a", 1.0)
        layout = build_layout(program, wcg, config)
        # The first compound's first procedure starts at offset 0 of a
        # cache frame, so its colours are realised exactly.
        first = layout.order_by_address()[0]
        assert layout.address_of(first) % config.size == 0
