"""Tests for the trivial baselines."""

import pytest

from repro.cache.config import CacheConfig
from repro.placement.base import PlacementContext
from repro.placement.identity import DefaultPlacement, RandomPlacement
from repro.profiles.graph import WeightedGraph
from repro.program.layout import Layout
from repro.program.program import Program


@pytest.fixture
def context() -> PlacementContext:
    program = Program.from_sizes({"a": 10, "b": 20, "c": 30})
    return PlacementContext(
        program=program,
        config=CacheConfig(size=64, line_size=32),
        wcg=WeightedGraph(),
    )


def test_default_matches_source_order(context):
    layout = DefaultPlacement().place(context)
    assert layout == Layout.default(context.program)


def test_default_name(context):
    assert DefaultPlacement().name == "default"


def test_random_deterministic_per_seed(context):
    a = RandomPlacement(seed=4).place(context)
    b = RandomPlacement(seed=4).place(context)
    assert a == b


def test_random_varies_with_seed(context):
    orders = {
        tuple(RandomPlacement(seed=s).place(context).order_by_address())
        for s in range(10)
    }
    assert len(orders) > 1
