"""Tests for the TRG-metric local-search placement."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate
from repro.core.gbsc import GBSCPlacement
from repro.errors import PlacementError
from repro.eval.metrics import trg_conflict_metric
from repro.placement.base import PlacementContext
from repro.placement.localsearch import TRGOptimizerPlacement
from repro.profiles.trg import build_trgs
from repro.profiles.wcg import build_wcg
from repro.program.program import Program
from tests.conftest import full_trace


def make_context(program, refs, config, chunk_size=32):
    trace = full_trace(program, refs)
    return (
        PlacementContext(
            program=program,
            config=config,
            wcg=build_wcg(trace),
            trgs=build_trgs(trace, config, chunk_size=chunk_size),
            popular=tuple(sorted(trace.touched_procedures())),
        ),
        trace,
    )


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)


class TestOptimizer:
    def test_validation(self):
        with pytest.raises(PlacementError):
            TRGOptimizerPlacement(max_passes=0)

    def test_produces_valid_layout(self, config):
        program = Program.from_sizes(
            {"a": 64, "b": 64, "c": 64, "d": 64, "cold": 64}
        )
        refs = ["a", "b", "a", "c", "d", "b"] * 15
        context, _ = make_context(program, refs, config)
        layout = TRGOptimizerPlacement().place(context)
        assert sorted(layout.order_by_address()) == sorted(program.names)

    def test_deterministic(self, config):
        program = Program.from_sizes({"a": 64, "b": 96, "c": 64})
        refs = ["a", "b", "c", "b", "a", "c"] * 10
        context, _ = make_context(program, refs, config)
        algo = TRGOptimizerPlacement(seed=3)
        assert algo.place(context) == algo.place(context)

    def test_metric_at_most_gbsc(self, config):
        """Coordinate descent seeded from the GBSC layout can only
        lower (or keep) the metric GBSC achieved."""
        program = Program.from_sizes(
            {f"p{i}": 48 + 16 * (i % 3) for i in range(8)}
        )
        import random

        rng = random.Random(1)
        refs = [f"p{rng.randrange(8)}" for _ in range(600)]
        context, _ = make_context(program, refs, config)
        gbsc_layout = GBSCPlacement().place(context)
        optimized = TRGOptimizerPlacement(
            start_from=GBSCPlacement()
        ).place(context)
        metric_gbsc = trg_conflict_metric(
            gbsc_layout, context.trgs.place, config, 32
        )
        metric_opt = trg_conflict_metric(
            optimized, context.trgs.place, config, 32
        )
        assert metric_opt <= metric_gbsc + 1e-9

    def test_resolves_simple_conflict(self, config):
        """Two heavily interleaved procedures must end on disjoint
        lines; a third, never-interleaved one may overlap them."""
        program = Program.from_sizes({"x": 96, "y": 96, "z": 64})
        refs = ["x", "y"] * 30 + ["z"]
        context, _ = make_context(program, refs, config)
        layout = TRGOptimizerPlacement().place(context)
        assert not (
            layout.cache_sets_of("x", config)
            & layout.cache_sets_of("y", config)
        )

    def test_improves_miss_rate_over_zero_start(self, config):
        """From the all-at-offset-0 start (maximal conflict), descent
        must reach a layout with strictly fewer misses."""
        program = Program.from_sizes({"a": 96, "b": 96, "c": 64})
        refs = ["a", "b", "c"] * 25
        context, trace = make_context(program, refs, config)
        from repro.core.linearize import linearize
        from repro.core.merge import MergeNode, PlacedProcedure

        worst_nodes = tuple(
            MergeNode([PlacedProcedure(name, 0)])
            for name in ("a", "b", "c")
        )
        worst = linearize(worst_nodes, program, config).layout
        optimized = TRGOptimizerPlacement().place(context)
        assert (
            simulate(optimized, trace, config).misses
            < simulate(worst, trace, config).misses
        )
