"""Tests for the logical-cache (Torrellas-style) baseline."""

import pytest

from repro.cache.config import CacheConfig
from repro.eval.experiment import build_context
from repro.placement.logical import LogicalCachePlacement, logical_cache_order
from repro.program.layout import Layout
from repro.program.program import Program
from repro.trace.patterns import full_body_trace, round_robin


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)


class TestFramePacking:
    def test_frame_members_never_conflict(self, config):
        """The defining guarantee: procedures sharing a frame occupy
        disjoint cache sets."""
        program = Program.from_sizes(
            {"hot1": 100, "hot2": 100, "hot3": 100}
        )
        order, gaps = logical_cache_order(
            program, config, ["hot1", "hot2", "hot3"]
        )
        layout = Layout.from_order(program, order, gaps_before=gaps)
        # hot1 + hot2 fit one 256-byte frame; hot3 opens a new frame.
        assert not (
            layout.cache_sets_of("hot1", config)
            & layout.cache_sets_of("hot2", config)
        )
        assert layout.address_of("hot3") % config.size == 0

    def test_frames_are_cache_aligned(self, config):
        program = Program.from_sizes({"a": 200, "b": 200})
        order, gaps = logical_cache_order(program, config, ["a", "b"])
        layout = Layout.from_order(program, order, gaps_before=gaps)
        assert layout.address_of("a") % config.size == 0
        assert layout.address_of("b") % config.size == 0

    def test_first_fit_reuses_earlier_frames(self, config):
        """A small procedure ranked later still fills an earlier
        frame's leftover space."""
        program = Program.from_sizes(
            {"big1": 200, "big2": 200, "small": 32}
        )
        order, gaps = logical_cache_order(
            program, config, ["big1", "big2", "small"]
        )
        layout = Layout.from_order(program, order, gaps_before=gaps)
        # 'small' lands in big1's frame (first 256 bytes).
        assert layout.address_of("small") < config.size

    def test_oversized_procedures_trail(self, config):
        program = Program.from_sizes({"giant": 1000, "hot": 64})
        order, _ = logical_cache_order(
            program, config, ["giant", "hot"]
        )
        assert order.index("hot") < order.index("giant")

    def test_unranked_procedures_appended(self, config):
        program = Program.from_sizes({"hot": 64, "cold": 64})
        order, _ = logical_cache_order(program, config, ["hot"])
        assert order == ["hot", "cold"]


class TestPlacement:
    def test_valid_layout_end_to_end(self, config):
        program = Program.from_sizes(
            {f"p{i}": 80 for i in range(10)}
        )
        trace = full_body_trace(
            program, round_robin([f"p{i}" for i in range(6)], 20)
        )
        context = build_context(trace, config, coverage=1.0)
        layout = LogicalCachePlacement().place(context)
        assert sorted(layout.order_by_address()) == sorted(program.names)

    def test_deterministic(self, config):
        program = Program.from_sizes({f"p{i}": 90 for i in range(8)})
        trace = full_body_trace(
            program, round_robin([f"p{i}" for i in range(8)], 15)
        )
        context = build_context(trace, config, coverage=1.0)
        algo = LogicalCachePlacement()
        assert algo.place(context) == algo.place(context)

    def test_hot_pair_protected(self, config):
        """The two hottest procedures never conflict (they share the
        first frame when they fit)."""
        program = Program.from_sizes(
            {"a": 100, "b": 100, "c": 100, "d": 100}
        )
        refs = round_robin(["a", "b"], 50) + round_robin(["c", "d"], 5)
        trace = full_body_trace(program, refs)
        context = build_context(trace, config, coverage=1.0)
        layout = LogicalCachePlacement().place(context)
        assert not (
            layout.cache_sets_of("a", config)
            & layout.cache_sets_of("b", config)
        )

    def test_name(self):
        assert LogicalCachePlacement().name == "TXD"
