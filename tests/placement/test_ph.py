"""Tests for the Pettis & Hansen implementation."""

import pytest

from repro.cache.config import CacheConfig
from repro.placement.base import PlacementContext
from repro.placement.ph import PettisHansenPlacement, ph_order
from repro.profiles.graph import WeightedGraph
from repro.program.program import Program


def make_context(program, wcg) -> PlacementContext:
    return PlacementContext(
        program=program,
        config=CacheConfig(size=256, line_size=32),
        wcg=wcg,
    )


class TestChainMerging:
    def test_heaviest_pair_adjacent(self):
        """The heaviest caller/callee pair must end up adjacent."""
        program = Program.from_sizes({"a": 100, "b": 100, "c": 100})
        wcg = WeightedGraph()
        wcg.add_edge("a", "b", 100.0)
        wcg.add_edge("b", "c", 1.0)
        order = ph_order(program, wcg)
        positions = {name: i for i, name in enumerate(order)}
        assert abs(positions["a"] - positions["b"]) == 1

    def test_all_procedures_placed_exactly_once(self):
        program = Program.from_sizes(
            {f"p{i}": 50 for i in range(10)}
        )
        wcg = WeightedGraph()
        wcg.add_edge("p0", "p1", 5.0)
        wcg.add_edge("p2", "p3", 7.0)
        order = ph_order(program, wcg)
        assert sorted(order) == sorted(program.names)

    def test_unexecuted_procedures_trail(self):
        program = Program.from_sizes({"hot1": 10, "hot2": 10, "cold": 10})
        wcg = WeightedGraph()
        wcg.add_edge("hot1", "hot2", 3.0)
        order = ph_order(program, wcg)
        assert order[-1] == "cold"

    def test_chain_combination_minimizes_pq_distance(self):
        """After merging two chains, the heaviest original cross edge's
        endpoints should be as close as the four orders allow."""
        program = Program.from_sizes(
            {"a": 100, "b": 100, "c": 100, "d": 100}
        )
        wcg = WeightedGraph()
        # Build chains (a, b) and (c, d) first, then join with the
        # heaviest cross edge between b and c.
        wcg.add_edge("a", "b", 100.0)
        wcg.add_edge("c", "d", 90.0)
        wcg.add_edge("b", "c", 50.0)
        order = ph_order(program, wcg)
        positions = {name: i for i, name in enumerate(order)}
        assert abs(positions["b"] - positions["c"]) == 1

    def test_reversal_used_when_better(self):
        """Cross edge touches the *head* of each chain, so one chain
        must be reversed to bring the endpoints together."""
        program = Program.from_sizes(
            {"a": 100, "b": 100, "c": 100, "d": 100}
        )
        wcg = WeightedGraph()
        wcg.add_edge("a", "b", 100.0)  # chain A = (a, b)
        wcg.add_edge("c", "d", 90.0)  # chain B = (c, d)
        wcg.add_edge("a", "c", 50.0)  # joins the two heads
        order = ph_order(program, wcg)
        positions = {name: i for i, name in enumerate(order)}
        assert abs(positions["a"] - positions["c"]) == 1

    def test_deterministic(self):
        program = Program.from_sizes({f"p{i}": 60 for i in range(12)})
        wcg = WeightedGraph()
        import random

        rng = random.Random(0)
        for _ in range(25):
            a, b = rng.sample(program.names, 2)
            wcg.add_edge(a, b, rng.randint(1, 100))
        assert ph_order(program, wcg) == ph_order(program, wcg)

    def test_tie_break_is_stable(self):
        program = Program.from_sizes({"a": 10, "b": 10, "c": 10, "d": 10})
        wcg = WeightedGraph()
        wcg.add_edge("a", "b", 5.0)
        wcg.add_edge("c", "d", 5.0)
        first = ph_order(program, wcg)
        for _ in range(5):
            assert ph_order(program, wcg) == first


class TestPlacement:
    def test_layout_is_contiguous(self):
        program = Program.from_sizes({"a": 100, "b": 60, "c": 40})
        wcg = WeightedGraph()
        wcg.add_edge("a", "c", 10.0)
        layout = PettisHansenPlacement().place(make_context(program, wcg))
        assert layout.gap_total() == 0
        assert layout.text_size == program.total_size

    def test_empty_wcg_keeps_program_order(self):
        program = Program.from_sizes({"a": 10, "b": 10})
        layout = PettisHansenPlacement().place(
            make_context(program, WeightedGraph())
        )
        assert layout.order_by_address() == ["a", "b"]

    def test_name(self):
        assert PettisHansenPlacement().name == "PH"
