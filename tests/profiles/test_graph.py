"""Tests for the weighted-graph core."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.profiles.graph import WeightedGraph


@pytest.fixture
def graph() -> WeightedGraph:
    g = WeightedGraph()
    g.add_edge("a", "b", 3.0)
    g.add_edge("b", "c", 5.0)
    g.add_edge("a", "c", 1.0)
    return g


class TestMutation:
    def test_add_edge_accumulates(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 2.0)
        g.add_edge("a", "b", 3.0)
        assert g.weight("a", "b") == 5.0

    def test_symmetric(self, graph):
        assert graph.weight("a", "b") == graph.weight("b", "a")

    def test_set_weight_overwrites(self, graph):
        graph.set_weight("a", "b", 10.0)
        assert graph.weight("a", "b") == 10.0

    def test_self_edge_rejected(self):
        g = WeightedGraph()
        with pytest.raises(PlacementError):
            g.add_edge("a", "a")

    def test_negative_weight_rejected(self):
        g = WeightedGraph()
        with pytest.raises(PlacementError):
            g.add_edge("a", "b", -1.0)

    def test_remove_edge(self, graph):
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        assert "a" in graph  # nodes survive

    def test_remove_node(self, graph):
        graph.remove_node("b")
        assert "b" not in graph
        assert not graph.has_edge("a", "b")
        assert graph.has_edge("a", "c")

    def test_add_node_idempotent(self, graph):
        graph.add_node("a")
        assert len(graph) == 3


class TestQueries:
    def test_absent_edge_weight_zero(self, graph):
        assert graph.weight("a", "zz") == 0.0

    def test_neighbors(self, graph):
        assert set(graph.neighbors("a")) == {"b", "c"}

    def test_degree(self, graph):
        assert graph.degree("b") == 2
        assert graph.degree("missing") == 0

    def test_edges_enumerated_once(self, graph):
        edges = list(graph.edges())
        assert len(edges) == 3
        assert graph.num_edges() == 3

    def test_total_weight(self, graph):
        assert graph.total_weight() == 9.0

    def test_heaviest_edge(self, graph):
        a, b, w = graph.heaviest_edge()
        assert {a, b} == {"b", "c"}
        assert w == 5.0

    def test_heaviest_edge_empty(self):
        assert WeightedGraph().heaviest_edge() is None

    def test_heaviest_edge_deterministic_tie_break(self):
        g = WeightedGraph()
        g.add_edge("x", "y", 5.0)
        g.add_edge("a", "b", 5.0)
        a, b, _ = g.heaviest_edge()
        assert (a, b) == ("a", "b")  # canonical repr order

    def test_equality(self, graph):
        clone = graph.copy()
        assert clone == graph
        clone.add_edge("a", "b", 1.0)
        assert clone != graph


class TestCopyAndSubgraph:
    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.set_weight("a", "b", 99.0)
        assert graph.weight("a", "b") == 3.0

    def test_subgraph(self, graph):
        sub = graph.subgraph(["a", "b"])
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("b", "c")
        assert "c" not in sub

    def test_subgraph_ignores_missing(self, graph):
        sub = graph.subgraph(["a", "ghost"])
        assert "a" in sub
        assert "ghost" not in sub


class TestMergeNodesInto:
    def test_parallel_edges_sum(self, graph):
        # Merge b into a: edge a-c (1) and b-c (5) combine to 6.
        graph.merge_nodes_into("a", "b")
        assert graph.weight("a", "c") == 6.0
        assert "b" not in graph

    def test_edge_between_merged_disappears(self, graph):
        graph.merge_nodes_into("a", "b")
        assert not graph.has_edge("a", "b")

    def test_merge_missing_node_rejected(self, graph):
        with pytest.raises(PlacementError):
            graph.merge_nodes_into("a", "ghost")

    def test_merge_self_rejected(self, graph):
        with pytest.raises(PlacementError):
            graph.merge_nodes_into("a", "a")

    def test_repeated_merges_reduce_to_one_node(self, graph):
        graph.merge_nodes_into("a", "b")
        graph.merge_nodes_into("a", "c")
        assert len(graph) == 1
        assert graph.num_edges() == 0


@given(
    edges=st.lists(
        st.tuples(
            st.integers(0, 10), st.integers(0, 10), st.floats(0.1, 100)
        ),
        max_size=40,
    )
)
def test_total_weight_invariant_under_merge(edges):
    """Merging two nodes preserves total weight minus the merged edge."""
    g = WeightedGraph()
    for a, b, w in edges:
        if a != b:
            g.add_edge(a, b, w)
    heaviest = g.heaviest_edge()
    if heaviest is None:
        return
    a, b, w = heaviest
    before = g.total_weight()
    g.merge_nodes_into(a, b)
    assert g.total_weight() == pytest.approx(before - w)


class TestCanonicalOrdering:
    def test_edges_canonicalised_naturally(self):
        """Edge endpoints come back in natural order: p2 before p10,
        not the repr-lexicographic p10 < p2."""
        g = WeightedGraph()
        g.add_edge("p10", "p2", 1.0)
        [(a, b, _)] = list(g.edges())
        assert (a, b) == ("p2", "p10")

    def test_chunks_canonicalised_by_procedure_then_index(self):
        from repro.program.procedure import ChunkId

        g = WeightedGraph()
        g.add_edge(ChunkId("p10", 0), ChunkId("p2", 3), 1.0)
        [(a, b, _)] = list(g.edges())
        assert (a, b) == (ChunkId("p2", 3), ChunkId("p10", 0))

    def test_structural_key_shared_with_perturb(self):
        """graph and perturb canonicalise with the same helper."""
        from repro.profiles import perturb
        from repro.profiles.graph import structural_node_key

        assert perturb.structural_node_key is structural_node_key

    def test_equal_structural_keys_fall_back_to_repr(self):
        """"p01" and "p1" share a structural key; the repr tiebreak
        keeps the canonical order total and deterministic."""
        g = WeightedGraph()
        g.add_edge("p1", "p01", 1.0)
        [(a, b, _)] = list(g.edges())
        assert (a, b) == ("p01", "p1")


class TestSetEdges:
    def test_bulk_set_matches_add_edge(self):
        bulk = WeightedGraph()
        scalar = WeightedGraph()
        for node in ("a", "b", "c"):
            bulk.add_node(node)
            scalar.add_node(node)
        edges = [("a", "b", 2.0), ("b", "c", 5.0)]
        bulk.set_edges(edges)
        for a, b, weight in edges:
            scalar.add_edge(a, b, weight)
        assert bulk == scalar
        assert bulk.weight("a", "b") == 2.0
        assert bulk.weight("b", "a") == 2.0

    def test_rejects_self_edge(self):
        graph = WeightedGraph()
        graph.add_node("a")
        with pytest.raises(PlacementError):
            graph.set_edges([("a", "a", 1.0)])

    def test_rejects_negative_weight(self):
        graph = WeightedGraph()
        graph.add_node("a")
        graph.add_node("b")
        with pytest.raises(PlacementError):
            graph.set_edges([("a", "b", -1.0)])

    def test_rejects_unknown_endpoint(self):
        graph = WeightedGraph()
        graph.add_node("a")
        with pytest.raises(PlacementError):
            graph.set_edges([("missing", "a", 1.0)])
