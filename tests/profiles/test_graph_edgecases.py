"""Edge-case tests for the weighted-graph core."""

import pytest

from repro.profiles.graph import WeightedGraph
from repro.program.procedure import ChunkId


class TestHasNeighborIn:
    def test_true_when_edge_exists(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        assert g.has_neighbor_in("a", {"b", "z"})

    def test_false_when_disjoint(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        assert not g.has_neighbor_in("a", {"c", "d"})

    def test_false_for_unknown_node(self):
        assert not WeightedGraph().has_neighbor_in("ghost", {"a"})

    def test_false_for_isolated_node(self):
        g = WeightedGraph()
        g.add_node("lonely")
        assert not g.has_neighbor_in("lonely", {"lonely", "x"})

    def test_empty_candidates(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        assert not g.has_neighbor_in("a", set())


class TestRemovalEdgeCases:
    def test_remove_missing_edge_is_noop(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        g.remove_edge("a", "z")
        g.remove_edge("x", "y")
        assert g.weight("a", "b") == 1.0

    def test_remove_missing_node_is_noop(self):
        g = WeightedGraph()
        g.add_node("a")
        g.remove_node("ghost")
        assert "a" in g

    def test_edges_after_removal(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 2.0)
        g.remove_edge("a", "b")
        assert [(a, b) for a, b, _ in g.edges()] == [("b", "c")]


class TestMixedNodeTypes:
    def test_chunk_nodes_work_everywhere(self):
        g = WeightedGraph()
        g.add_edge(ChunkId("f", 0), ChunkId("g", 1), 4.0)
        g.add_edge(ChunkId("f", 0), ChunkId("f", 1), 2.0)
        heaviest = g.heaviest_edge()
        assert heaviest[2] == 4.0
        sub = g.subgraph([ChunkId("f", 0), ChunkId("g", 1)])
        assert sub.num_edges() == 1

    def test_repr_based_canonical_order_is_stable(self):
        g = WeightedGraph()
        g.add_edge(ChunkId("b", 0), ChunkId("a", 0), 1.0)
        ((x, y, _),) = list(g.edges())
        assert repr(x) <= repr(y)


class TestSubgraphEdgeCases:
    def test_empty_keep(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        sub = g.subgraph([])
        assert len(sub) == 0
        assert sub.num_edges() == 0

    def test_subgraph_preserves_weights_exactly(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.5)
        g.add_edge("a", "b", 2.5)
        sub = g.subgraph(["a", "b"])
        assert sub.weight("a", "b") == 4.0
