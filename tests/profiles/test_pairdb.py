"""Tests for the Section 6 pair database D(p, {r, s})."""

import pytest

from repro.profiles.pairdb import PairDatabase, build_pair_database


def unit_size(_block) -> int:
    return 1


class TestPairDatabase:
    def test_record_pairs(self):
        db = PairDatabase()
        db.record("p", ["r", "s", "t"])
        assert db.count("p", "r", "s") == 1
        assert db.count("p", "r", "t") == 1
        assert db.count("p", "s", "t") == 1

    def test_pair_is_unordered(self):
        db = PairDatabase()
        db.record("p", ["r", "s"])
        assert db.count("p", "r", "s") == db.count("p", "s", "r") == 1

    def test_single_block_between_records_nothing(self):
        db = PairDatabase()
        db.record("p", ["r"])
        assert db.count("p", "r", "r") == 0
        assert sum(db.pairs_for("p").values()) == 0

    def test_counts_accumulate(self):
        db = PairDatabase()
        db.record("p", ["r", "s"])
        db.record("p", ["r", "s", "t"])
        assert db.count("p", "r", "s") == 2

    def test_unknown_block_counts_zero(self):
        db = PairDatabase()
        assert db.count("nope", "a", "b") == 0

    def test_blocks_tracked(self):
        db = PairDatabase()
        db.add_block("lonely")
        db.record("p", ["r", "s"])
        assert {"lonely", "p"} <= db.blocks

    def test_total_records(self):
        db = PairDatabase()
        db.record("p", ["r", "s", "t"])  # 3 pairs
        db.record("q", ["r", "s"])  # 1 pair
        assert db.total_records() == 4


class TestBuildPairDatabase:
    def test_two_distinct_interveners(self):
        """p r s p: the pair {r, s} displaces p in a 2-way cache."""
        db, _ = build_pair_database(
            ["p", "r", "s", "p"], unit_size, capacity=10
        )
        assert db.count("p", "r", "s") == 1

    def test_one_intervener_is_not_enough(self):
        db, _ = build_pair_database(["p", "r", "p"], unit_size, capacity=10)
        assert sum(db.pairs_for("p").values()) == 0

    def test_capacity_eviction(self):
        db, _ = build_pair_database(
            ["p", "a", "b", "c", "p"], unit_size, capacity=2
        )
        # p evicted before its re-reference: nothing recorded.
        assert sum(db.pairs_for("p").values()) == 0

    def test_stats(self):
        _, stats = build_pair_database(
            ["p", "r", "s", "p"], unit_size, capacity=10
        )
        assert stats.refs_processed == 4
        assert stats.avg_q_entries > 0

    def test_longer_history_all_pairs(self):
        db, _ = build_pair_database(
            ["p", "a", "b", "c", "p"], unit_size, capacity=100
        )
        assert db.count("p", "a", "b") == 1
        assert db.count("p", "a", "c") == 1
        assert db.count("p", "b", "c") == 1
