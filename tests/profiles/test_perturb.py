"""Tests for multiplicative profile perturbation (Section 5.1)."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.profiles.graph import WeightedGraph
from repro.profiles.perturb import (
    PAPER_SCALE,
    perturbed,
    structural_node_key,
)
from repro.program.procedure import ChunkId


@pytest.fixture
def graph() -> WeightedGraph:
    g = WeightedGraph()
    g.add_edge("a", "b", 100.0)
    g.add_edge("b", "c", 200.0)
    g.add_node("isolated")
    return g


class TestPerturbation:
    def test_paper_scale(self):
        assert PAPER_SCALE == 0.1

    def test_zero_scale_is_identity(self, graph):
        assert perturbed(graph, 0.0, seed=1) == graph

    def test_deterministic(self, graph):
        assert perturbed(graph, 0.1, seed=5) == perturbed(graph, 0.1, seed=5)

    def test_different_seeds_differ(self, graph):
        a = perturbed(graph, 0.1, seed=1)
        b = perturbed(graph, 0.1, seed=2)
        assert a != b

    def test_structure_preserved(self, graph):
        noisy = perturbed(graph, 0.5, seed=3)
        assert set(noisy.nodes) == set(graph.nodes)
        assert noisy.num_edges() == graph.num_edges()
        assert noisy.has_edge("a", "b")

    def test_weights_stay_positive(self, graph):
        """Multiplicative noise cannot create negative weights — the
        paper's stated reason for choosing it over additive noise."""
        for seed in range(50):
            noisy = perturbed(graph, 2.0, seed=seed)
            for _, _, weight in noisy.edges():
                assert weight > 0

    def test_negative_scale_rejected(self, graph):
        with pytest.raises(ConfigError):
            perturbed(graph, -0.1, seed=0)

    def test_insertion_order_does_not_matter(self):
        """Canonical edge ordering: the same logical graph perturbs
        identically regardless of how it was built."""
        g1 = WeightedGraph()
        g1.add_edge("a", "b", 10.0)
        g1.add_edge("c", "d", 20.0)
        g2 = WeightedGraph()
        g2.add_edge("c", "d", 20.0)
        g2.add_edge("b", "a", 10.0)
        assert perturbed(g1, 0.3, seed=7) == perturbed(g2, 0.3, seed=7)

    @given(scale=st.floats(0.001, 1.0), seed=st.integers(0, 100))
    def test_self_scaling(self, scale, seed):
        """Perturbation ratios are independent of weight magnitude —
        the 'inherently self-scaling' property claimed in Section 5.1."""
        small = WeightedGraph()
        small.add_edge("a", "b", 1.0)
        big = WeightedGraph()
        big.add_edge("a", "b", 1e9)
        ratio_small = perturbed(small, scale, seed).weight("a", "b") / 1.0
        ratio_big = perturbed(big, scale, seed).weight("a", "b") / 1e9
        assert ratio_small == pytest.approx(ratio_big, rel=1e-9)

    def test_small_scale_small_changes(self, graph):
        noisy = perturbed(graph, 0.01, seed=9)
        for a, b, weight in graph.edges():
            assert noisy.weight(a, b) == pytest.approx(weight, rel=0.1)


class TestStructuralNodeKey:
    """The canonical visit order is structural, not ``repr``
    lexicographic: ``p2`` sorts before ``p10``, and chunk ids sort by
    (procedure, index)."""

    def test_natural_numeric_order(self):
        names = ["p10", "p2", "p1", "p20", "p3"]
        assert sorted(names, key=structural_node_key) == [
            "p1",
            "p2",
            "p3",
            "p10",
            "p20",
        ]

    def test_repr_order_was_wrong(self):
        # The bug this key replaces: lexicographic repr ordering puts
        # p10 before p2.
        assert sorted(["p10", "p2"], key=repr) == ["p10", "p2"]
        assert structural_node_key("p2") < structural_node_key("p10")

    def test_chunk_ids_sort_by_procedure_then_index(self):
        chunks = [
            ChunkId("p10", 0),
            ChunkId("p2", 1),
            ChunkId("p2", 0),
            ChunkId("p2", 10),
            ChunkId("p2", 2),
        ]
        assert sorted(chunks, key=structural_node_key) == [
            ChunkId("p2", 0),
            ChunkId("p2", 1),
            ChunkId("p2", 2),
            ChunkId("p2", 10),
            ChunkId("p10", 0),
        ]

    def test_names_and_chunks_never_interleave(self):
        mixed = [ChunkId("a", 0), "a", ChunkId("b", 1), "b"]
        ordered = sorted(mixed, key=structural_node_key)
        assert ordered == [ChunkId("a", 0), ChunkId("b", 1), "a", "b"]

    def test_multi_segment_names(self):
        names = ["f2_g10", "f2_g2", "f10_g1"]
        assert sorted(names, key=structural_node_key) == [
            "f2_g2",
            "f2_g10",
            "f10_g1",
        ]


class TestDrawAssignment:
    def test_draws_follow_structural_edge_order(self):
        """The k-th Gaussian draw lands on the k-th edge in structural
        order — pinning the exact rng-to-edge assignment."""
        graph = WeightedGraph()
        graph.add_edge("p10", "p11", 100.0)
        graph.add_edge("p2", "p3", 100.0)
        noisy = perturbed(graph, 0.5, seed=13)
        rng = random.Random(13)
        first = 100.0 * math.exp(0.5 * rng.gauss(0.0, 1.0))
        second = 100.0 * math.exp(0.5 * rng.gauss(0.0, 1.0))
        # (p2, p3) sorts before (p10, p11) under the structural key.
        assert noisy.weight("p2", "p3") == pytest.approx(first)
        assert noisy.weight("p10", "p11") == pytest.approx(second)

    def test_digit_width_does_not_move_other_draws(self):
        """Renaming one node without changing its structural rank
        leaves every other edge's perturbation untouched."""
        g1 = WeightedGraph()
        g1.add_edge("a", "b", 10.0)
        g1.add_edge("m", "n", 20.0)
        g2 = WeightedGraph()
        g2.add_edge("a", "b", 10.0)
        g2.add_edge("m2", "n", 20.0)  # still sorts after (a, b)
        n1 = perturbed(g1, 0.3, seed=7)
        n2 = perturbed(g2, 0.3, seed=7)
        assert n1.weight("a", "b") == n2.weight("a", "b")
        assert n1.weight("m", "n") == n2.weight("m2", "n")

    def test_chunk_graphs_perturb_deterministically(self):
        graph = WeightedGraph()
        graph.add_edge(ChunkId("p2", 0), ChunkId("p10", 0), 50.0)
        graph.add_edge(ChunkId("p2", 1), ChunkId("p2", 2), 60.0)
        assert perturbed(graph, 0.2, seed=3) == perturbed(
            graph, 0.2, seed=3
        )
