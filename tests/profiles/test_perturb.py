"""Tests for multiplicative profile perturbation (Section 5.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.profiles.graph import WeightedGraph
from repro.profiles.perturb import PAPER_SCALE, perturbed


@pytest.fixture
def graph() -> WeightedGraph:
    g = WeightedGraph()
    g.add_edge("a", "b", 100.0)
    g.add_edge("b", "c", 200.0)
    g.add_node("isolated")
    return g


class TestPerturbation:
    def test_paper_scale(self):
        assert PAPER_SCALE == 0.1

    def test_zero_scale_is_identity(self, graph):
        assert perturbed(graph, 0.0, seed=1) == graph

    def test_deterministic(self, graph):
        assert perturbed(graph, 0.1, seed=5) == perturbed(graph, 0.1, seed=5)

    def test_different_seeds_differ(self, graph):
        a = perturbed(graph, 0.1, seed=1)
        b = perturbed(graph, 0.1, seed=2)
        assert a != b

    def test_structure_preserved(self, graph):
        noisy = perturbed(graph, 0.5, seed=3)
        assert set(noisy.nodes) == set(graph.nodes)
        assert noisy.num_edges() == graph.num_edges()
        assert noisy.has_edge("a", "b")

    def test_weights_stay_positive(self, graph):
        """Multiplicative noise cannot create negative weights — the
        paper's stated reason for choosing it over additive noise."""
        for seed in range(50):
            noisy = perturbed(graph, 2.0, seed=seed)
            for _, _, weight in noisy.edges():
                assert weight > 0

    def test_negative_scale_rejected(self, graph):
        with pytest.raises(ConfigError):
            perturbed(graph, -0.1, seed=0)

    def test_insertion_order_does_not_matter(self):
        """Canonical edge ordering: the same logical graph perturbs
        identically regardless of how it was built."""
        g1 = WeightedGraph()
        g1.add_edge("a", "b", 10.0)
        g1.add_edge("c", "d", 20.0)
        g2 = WeightedGraph()
        g2.add_edge("c", "d", 20.0)
        g2.add_edge("b", "a", 10.0)
        assert perturbed(g1, 0.3, seed=7) == perturbed(g2, 0.3, seed=7)

    @given(scale=st.floats(0.001, 1.0), seed=st.integers(0, 100))
    def test_self_scaling(self, scale, seed):
        """Perturbation ratios are independent of weight magnitude —
        the 'inherently self-scaling' property claimed in Section 5.1."""
        small = WeightedGraph()
        small.add_edge("a", "b", 1.0)
        big = WeightedGraph()
        big.add_edge("a", "b", 1e9)
        ratio_small = perturbed(small, scale, seed).weight("a", "b") / 1.0
        ratio_big = perturbed(big, scale, seed).weight("a", "b") / 1e9
        assert ratio_small == pytest.approx(ratio_big, rel=1e-9)

    def test_small_scale_small_changes(self, graph):
        noisy = perturbed(graph, 0.01, seed=9)
        for a, b, weight in graph.edges():
            assert noisy.weight(a, b) == pytest.approx(weight, rel=0.1)
