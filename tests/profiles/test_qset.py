"""Tests for the Section 3 working set Q."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.profiles.qset import WorkingSet


def unit_sizes(_block) -> int:
    return 1


def make_ws(capacity=100, size_of=unit_sizes) -> WorkingSet:
    return WorkingSet(capacity, size_of)


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            WorkingSet(0, unit_sizes)

    def test_first_reference_returns_none(self):
        ws = make_ws()
        assert ws.reference("a") is None

    def test_re_reference_returns_between(self):
        ws = make_ws()
        ws.reference("a")
        ws.reference("b")
        ws.reference("c")
        assert ws.reference("a") == ["b", "c"]

    def test_adjacent_re_reference_returns_empty(self):
        ws = make_ws()
        ws.reference("a")
        assert ws.reference("a") == []

    def test_single_occurrence_kept(self):
        ws = make_ws()
        ws.reference("a")
        ws.reference("b")
        ws.reference("a")
        assert list(ws.blocks()) == ["b", "a"]
        assert len(ws) == 2

    def test_between_excludes_endpoints(self):
        ws = make_ws()
        for block in ["p", "x", "y", "z"]:
            ws.reference(block)
        between = ws.reference("p")
        assert between == ["x", "y", "z"]
        assert "p" not in between

    def test_order_oldest_first(self):
        ws = make_ws()
        for block in ["a", "b", "c"]:
            ws.reference(block)
        assert list(ws.blocks()) == ["a", "b", "c"]

    def test_nonpositive_block_size_rejected(self):
        ws = WorkingSet(10, lambda _b: 0)
        with pytest.raises(ConfigError):
            ws.reference("a")


class TestEviction:
    def test_eviction_keeps_at_least_capacity(self):
        """Entries are evicted only while the remainder still totals at
        least the capacity (Section 3's exact rule)."""
        ws = WorkingSet(3, unit_sizes)
        for block in ["a", "b", "c", "d"]:
            ws.reference(block)
        # After d: removing 'a' leaves b,c,d = 3 >= 3, so 'a' goes.
        assert list(ws.blocks()) == ["b", "c", "d"]
        assert ws.total_size == 3

    def test_no_eviction_below_capacity(self):
        ws = WorkingSet(10, unit_sizes)
        for block in "abcde":
            ws.reference(block)
        assert len(ws) == 5

    def test_eviction_with_byte_sizes(self):
        sizes = {"big": 8, "s1": 1, "s2": 1, "s3": 1}
        ws = WorkingSet(4, sizes.__getitem__)
        ws.reference("big")
        ws.reference("s1")
        # Removing 'big' would leave 1 < 4, so it stays.
        assert list(ws.blocks()) == ["big", "s1"]
        ws.reference("s2")
        ws.reference("s3")
        # 8+1+1+1 = 11; removing big leaves 3 < 4 -> big still stays.
        assert "big" in ws

    def test_oversized_new_block_is_kept(self):
        sizes = {"huge": 100, "a": 1}
        ws = WorkingSet(10, sizes.__getitem__)
        ws.reference("a")
        ws.reference("huge")
        # 'a' is evicted (huge alone is 100 >= 10); huge itself stays.
        assert list(ws.blocks()) == ["huge"]

    def test_re_reference_does_not_grow_size(self):
        ws = WorkingSet(5, unit_sizes)
        for block in "abc":
            ws.reference(block)
        before = ws.total_size
        ws.reference("a")
        assert ws.total_size == before

    def test_evicted_block_forgotten(self):
        ws = WorkingSet(2, unit_sizes)
        for block in ["a", "b", "c"]:
            ws.reference(block)
        # 'a' was evicted; a re-reference is treated as new.
        assert ws.reference("a") is None


class TestPaperFigure3:
    """The Q-processing walkthrough of Figure 3 (trace #2 prefix).

    Sizes: each of M, X, Z fits such that their total is below twice
    the cache size, so nothing is evicted during the walkthrough.
    """

    def test_walkthrough(self):
        sizes = {"M": 32, "X": 32, "Z": 32}
        ws = WorkingSet(192, sizes.__getitem__)  # 2 x 96-byte cache
        # Trace: ... M X M Z (processing each in turn)
        assert ws.reference("M") is None
        assert ws.reference("X") is None
        # (a) second M: X lies between -> edge (M, X) credited.
        assert ws.reference("M") == ["X"]
        # (b) first Z: no previous occurrence -> no edges.
        assert ws.reference("Z") is None
        assert list(ws.blocks()) == ["X", "M", "Z"]
        # (c) next M: Z between the two M references.
        assert ws.reference("M") == ["Z"]
        # (d) next X: Z and M both lie between the X references
        # (in Q order: Z was referenced before the final M).
        assert ws.reference("X") == ["Z", "M"]


class TestProperties:
    @given(
        refs=st.lists(st.sampled_from("abcdefgh"), max_size=200),
        capacity=st.integers(1, 10),
    )
    def test_no_duplicates_ever(self, refs, capacity):
        ws = WorkingSet(capacity, unit_sizes)
        for ref in refs:
            ws.reference(ref)
            blocks = list(ws.blocks())
            assert len(blocks) == len(set(blocks))
            assert len(blocks) == len(ws)

    @given(
        refs=st.lists(st.sampled_from("abcdefgh"), max_size=200),
        capacity=st.integers(1, 10),
    )
    def test_total_size_matches_contents(self, refs, capacity):
        ws = WorkingSet(capacity, unit_sizes)
        for ref in refs:
            ws.reference(ref)
            assert ws.total_size == len(list(ws.blocks()))

    @given(refs=st.lists(st.sampled_from("abcd"), max_size=100))
    def test_between_is_contiguous_recent_suffix(self, refs):
        """The 'between' list is exactly the blocks referenced after
        the previous occurrence, with duplicates collapsed to their
        most recent position."""
        ws = WorkingSet(1000, unit_sizes)
        last_seen: dict[str, int] = {}
        for step, ref in enumerate(refs):
            between = ws.reference(ref)
            if between is not None:
                expected = sorted(
                    (
                        block
                        for block, when in last_seen.items()
                        if when > last_seen[ref] and block != ref
                    ),
                    key=lambda b: last_seen[b],
                )
                assert between == expected
            last_seen[ref] = step


class TestHitPathReuse:
    def test_re_reference_does_not_reinvoke_size_of(self):
        """A hit-path re-reference reuses the existing node and its
        recorded size: size_of runs once per Q entry, not once per
        reference."""
        calls: list[str] = []

        def counting_size_of(block):
            calls.append(block)
            return 10

        ws = WorkingSet(1000, counting_size_of)
        ws.reference("a")
        ws.reference("b")
        ws.reference("c")
        assert calls == ["a", "b", "c"]
        ws.reference("a")  # hit: between = [b, c]
        ws.reference("b")  # hit
        ws.reference("a")  # hit again
        assert calls == ["a", "b", "c"]

    def test_re_reference_keeps_recorded_size(self):
        """Q's byte total stays consistent even when size_of is
        non-constant: the size recorded at first insertion sticks."""
        sizes = {"a": 10, "b": 20}

        def drifting_size_of(block):
            size = sizes[block]
            sizes[block] += 100  # would corrupt totals if re-read
            return size

        ws = WorkingSet(1000, drifting_size_of)
        ws.reference("a")
        ws.reference("b")
        assert ws.total_size == 30
        ws.reference("a")
        ws.reference("b")
        assert ws.total_size == 30
        assert dict(ws.entries()) == {"a": 10, "b": 20}

    def test_re_reference_moves_block_to_most_recent(self):
        ws = WorkingSet(1000, unit_sizes)
        for block in ("a", "b", "c"):
            ws.reference(block)
        ws.reference("a")
        assert list(ws.blocks()) == ["b", "c", "a"]
        ws.reference("a")  # already most recent: no-op relink
        assert list(ws.blocks()) == ["b", "c", "a"]
