"""Tests for TRG construction (Sections 3, 4.1)."""

import pytest

from repro.cache.config import CacheConfig
from repro.errors import ConfigError
from repro.profiles.trg import (
    build_trg,
    build_trgs,
    chunk_refs,
    procedure_refs,
)
from repro.program.procedure import ChunkId
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


def unit_size(_block) -> int:
    return 1


class TestBuildTRG:
    def test_interleaving_credited(self):
        graph, _ = build_trg(["p", "q", "p"], unit_size, capacity=10)
        assert graph.weight("p", "q") == 1

    def test_no_interleaving_no_edge(self):
        graph, _ = build_trg(["p", "q", "q", "r"], unit_size, capacity=10)
        assert graph.weight("p", "q") == 0

    def test_first_reference_adds_node_only(self):
        graph, _ = build_trg(["p"], unit_size, capacity=10)
        assert "p" in graph
        assert graph.num_edges() == 0

    def test_repeated_interleaving_accumulates(self):
        graph, _ = build_trg(
            ["p", "q", "p", "q", "p"], unit_size, capacity=10
        )
        # p-q credited on each re-reference with the other in between:
        # p@2 sees q, q@3 sees p, p@4 sees q -> weight 3.
        assert graph.weight("p", "q") == 3

    def test_eviction_prevents_distant_edges(self):
        """With capacity 2, 'p' is evicted before its re-reference."""
        refs = ["p", "a", "b", "c", "p"]
        graph, _ = build_trg(refs, unit_size, capacity=2)
        assert graph.weight("p", "a") == 0
        assert graph.weight("p", "c") == 0

    def test_large_capacity_allows_distant_edges(self):
        refs = ["p", "a", "b", "c", "p"]
        graph, _ = build_trg(refs, unit_size, capacity=100)
        assert graph.weight("p", "a") == 1
        assert graph.weight("p", "b") == 1
        assert graph.weight("p", "c") == 1

    def test_stats(self):
        _, stats = build_trg(["a", "b", "a"], unit_size, capacity=10)
        assert stats.refs_processed == 3
        # Q sizes after each step: 1, 2, 2 -> mean 5/3.
        assert stats.avg_q_entries == pytest.approx(5 / 3)

    def test_empty_refs(self):
        graph, stats = build_trg([], unit_size, capacity=10)
        assert len(graph) == 0
        assert stats.refs_processed == 0
        assert stats.avg_q_entries == 0.0


class TestPaperFigure2:
    """Figure 2: the TRG of trace #2 distinguishes what the WCG cannot."""

    def _build(self, refs):
        sizes = {"M": 32, "X": 32, "Y": 32, "Z": 32}
        graph, _ = build_trg(refs, sizes.__getitem__, capacity=192)
        return graph

    def test_trace2_trg_shape(self):
        from tests.conftest import figure1_trace2_refs

        graph = self._build(figure1_trace2_refs())
        # WCG edges remain, with weights nearly doubled.
        assert graph.weight("M", "X") > 0
        assert graph.weight("M", "Y") > 0
        assert graph.weight("M", "Z") > 0
        # The extra edges: interleaving between (X, Z) and (Y, Z) ...
        assert graph.weight("X", "Z") > 0
        assert graph.weight("Y", "Z") > 0
        # ... but NOT between X and Y (phases never interleave them
        # inside Q: the single X->Y handover credits nothing because
        # capacity keeps X alive -- X is referenced once more? No:
        # X and Y interleave only at the phase boundary and X is never
        # referenced again, so no (X, Y) credit ever happens).
        assert graph.weight("X", "Y") == 0

    def test_trace1_trg_has_xy_edge(self):
        """Trace #1 alternates X and Y, so the TRG must connect them."""
        from tests.conftest import figure1_trace1_refs

        graph = self._build(figure1_trace1_refs())
        assert graph.weight("X", "Y") > 0

    def test_trace2_weights_nearly_double_wcg(self):
        from tests.conftest import figure1_trace2_refs

        graph = self._build(figure1_trace2_refs(iterations=40))
        # M-X: M is re-referenced with X in between 40 times, and X is
        # re-referenced with M in between 39 times -> 79 (vs 80 WCG
        # transitions): "nearly doubled" relative to call counts (40).
        assert graph.weight("M", "X") == 79


class TestRefStreams:
    @pytest.fixture
    def program(self):
        return Program.from_sizes({"a": 300, "b": 64})

    def test_procedure_refs_collapse(self, program):
        trace = Trace(
            program,
            [
                TraceEvent("a", 0, 100),
                TraceEvent("a", 100, 100),
                TraceEvent.full("b", 64),
                TraceEvent("a", 0, 100),
            ],
        )
        assert list(procedure_refs(trace)) == ["a", "b", "a"]

    def test_procedure_refs_popular_filter(self, program):
        trace = Trace(
            program,
            [
                TraceEvent.full("a", 300),
                TraceEvent.full("b", 64),
                TraceEvent.full("a", 300),
            ],
        )
        assert list(procedure_refs(trace, popular={"b"})) == ["b"]

    def test_chunk_refs_expand_extents(self, program):
        trace = Trace(program, [TraceEvent("a", 200, 100)])
        assert list(chunk_refs(trace, chunk_size=256)) == [
            ChunkId("a", 0),
            ChunkId("a", 1),
        ]

    def test_chunk_refs_collapse_duplicates(self, program):
        trace = Trace(
            program,
            [TraceEvent("a", 0, 100), TraceEvent("a", 100, 100)],
        )
        assert list(chunk_refs(trace, chunk_size=256)) == [ChunkId("a", 0)]

    def test_chunk_refs_popular_filter(self, program):
        trace = Trace(
            program,
            [TraceEvent.full("a", 300), TraceEvent.full("b", 64)],
        )
        chunks = list(chunk_refs(trace, chunk_size=256, popular={"b"}))
        assert chunks == [ChunkId("b", 0)]


class TestBuildTRGs:
    @pytest.fixture
    def program(self):
        return Program.from_sizes({"a": 300, "b": 64, "c": 64})

    def test_both_granularities(self, program):
        config = CacheConfig(size=256, line_size=32)
        trace = Trace(
            program,
            [
                TraceEvent.full("a", 300),
                TraceEvent.full("b", 64),
                TraceEvent.full("a", 300),
            ],
        )
        trgs = build_trgs(trace, config, chunk_size=256)
        assert trgs.select.weight("a", "b") == 1
        # Chunk granularity: b#0 lies between a#1 (end of first visit)
        # and a#0 (start of second visit).
        assert trgs.place.weight(ChunkId("a", 0), ChunkId("b", 0)) > 0
        assert trgs.chunk_size == 256

    def test_popular_filtering(self, program):
        config = CacheConfig(size=256, line_size=32)
        trace = Trace(
            program,
            [
                TraceEvent.full("a", 300),
                TraceEvent.full("c", 64),
                TraceEvent.full("a", 300),
            ],
        )
        trgs = build_trgs(trace, config, popular={"a"})
        assert "c" not in trgs.select
        assert trgs.select.num_edges() == 0

    def test_invalid_chunk_size(self, program):
        config = CacheConfig(size=256, line_size=32)
        trace = Trace(program, [TraceEvent.full("a", 300)])
        with pytest.raises(ConfigError):
            build_trgs(trace, config, chunk_size=0)

    def test_invalid_q_multiplier(self, program):
        config = CacheConfig(size=256, line_size=32)
        trace = Trace(program, [TraceEvent.full("a", 300)])
        with pytest.raises(ConfigError):
            build_trgs(trace, config, q_multiplier=0)
