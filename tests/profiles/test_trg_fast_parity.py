"""Property tests: the vectorized TRG builder is bit-exact.

The fast kernels of :mod:`repro.profiles.fast` must reproduce the
scalar Section 3 pipeline — :func:`repro.profiles.trg.build_trg` fed
by :func:`~repro.profiles.trg.procedure_refs` /
:func:`~repro.profiles.trg.chunk_refs` — exactly: the same graphs
(nodes, edge weights, node insertion order), the same
:class:`~repro.profiles.trg.TRGBuildStats` including ``avg_q_entries``
and ``evictions``, across granularities, popularity filters and
q-multipliers.  Every Table 1 and placement result rests on that
equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.errors import ConfigError
from repro.profiles.fast import (
    build_trg_fast,
    build_trgs_fast,
    chunk_ref_codes,
    procedure_ref_codes,
)
from repro.profiles.trg import (
    build_trg,
    build_trgs,
    chunk_refs,
    procedure_refs,
)
from repro.program.program import Program
from repro.trace.trace import Trace

# ----------------------------------------------------------------------
# Random-trace machinery
# ----------------------------------------------------------------------

#: Procedure size tables exercising both sides of every boundary:
#: sizes below/at/above the chunk size, and name sets whose repr order
#: differs from natural order (p2 vs p10).
SIZE_TABLES = st.sampled_from(
    [
        {"p1": 40, "p2": 96, "p10": 256, "p11": 300},
        {"a": 17, "b": 33, "c": 64, "d": 1000},
        {"main": 512, "helper": 48, "leaf": 16},
        {f"p{i}": 32 * (i + 1) for i in range(12)},
    ]
)


@st.composite
def random_traces(draw):
    """A random program plus a random extent trace over it."""
    sizes = draw(SIZE_TABLES)
    program = Program.from_sizes(sizes)
    names = list(sizes)
    n_events = draw(st.integers(0, 200))
    rng_seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    procs = rng.integers(0, len(names), size=n_events)
    size_arr = np.asarray([sizes[name] for name in names], dtype=np.int64)
    starts = (rng.random(n_events) * size_arr[procs]).astype(np.int64)
    max_len = size_arr[procs] - starts
    lengths = 1 + (rng.random(n_events) * max_len).astype(np.int64)
    lengths = np.minimum(lengths, max_len)
    trace = Trace.from_arrays(program, procs, starts, lengths)
    return trace


def popularity_filter(trace, keep_every):
    """An arbitrary popular subset (None = no filtering)."""
    if keep_every is None:
        return None
    names = trace.program.names
    return {name for i, name in enumerate(names) if i % keep_every == 0}


def decoded_stream(codes, labels_of):
    """Decode a code stream back to labels for the scalar builder."""
    return [labels_of[int(code)] for code in codes]


# ----------------------------------------------------------------------
# Stream-encoding parity: procedure_ref_codes / chunk_ref_codes
# ----------------------------------------------------------------------


@given(trace=random_traces(), keep_every=st.sampled_from([None, 1, 2, 3]))
@settings(max_examples=150, deadline=None)
def test_procedure_stream_matches_scalar(trace, keep_every):
    popular = popularity_filter(trace, keep_every)
    names = trace.program.names
    fast_stream = [
        names[code] for code in procedure_ref_codes(trace, popular).tolist()
    ]
    scalar_stream = list(procedure_refs(trace, popular))
    assert fast_stream == scalar_stream


@given(
    trace=random_traces(),
    keep_every=st.sampled_from([None, 1, 2]),
    chunk_size=st.sampled_from([16, 48, 100, 256]),
)
@settings(max_examples=150, deadline=None)
def test_chunk_stream_matches_scalar(trace, keep_every, chunk_size):
    from repro.profiles.fast import _chunk_geometry, _chunk_labels

    popular = popularity_filter(trace, keep_every)
    codes = chunk_ref_codes(trace, chunk_size, popular)
    base, _ = _chunk_geometry(trace.program, chunk_size)
    fast_stream = _chunk_labels(codes, base, trace.program.names)
    scalar_stream = list(chunk_refs(trace, chunk_size, popular))
    assert fast_stream == scalar_stream


# ----------------------------------------------------------------------
# Kernel parity: build_trg_fast vs build_trg on integer streams
# ----------------------------------------------------------------------


@given(
    codes=st.lists(st.integers(0, 15), max_size=300),
    capacity=st.sampled_from([1, 7, 64, 300, 10_000]),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=200, deadline=None)
def test_kernel_matches_scalar_on_integer_streams(codes, capacity, seed):
    rng = np.random.default_rng(seed)
    sizes_by_code = rng.integers(1, 80, size=16).astype(np.int64)
    stream = np.asarray(codes, dtype=np.int64)

    fast_graph, fast_stats = build_trg_fast(stream, sizes_by_code, capacity)
    scalar_graph, scalar_stats = build_trg(
        stream.tolist(), lambda code: int(sizes_by_code[code]), capacity
    )
    assert fast_graph == scalar_graph
    assert fast_stats == scalar_stats
    # Insertion (first-appearance) order is part of the contract: the
    # greedy algorithms iterate nodes in that order.
    assert fast_graph.nodes == scalar_graph.nodes


def test_kernel_empty_stream():
    graph, stats = build_trg_fast(
        np.empty(0, dtype=np.int64), np.ones(4, dtype=np.int64), 128
    )
    assert len(graph) == 0
    assert stats.refs_processed == 0
    assert stats.avg_q_entries == 0.0
    assert stats.evictions == 0


def test_kernel_rejects_non_positive_capacity():
    with pytest.raises(ConfigError):
        build_trg_fast(
            np.asarray([0, 1]), np.ones(2, dtype=np.int64), 0
        )


def test_kernel_rejects_non_positive_block_size():
    sizes = np.asarray([32, 0], dtype=np.int64)
    with pytest.raises(ConfigError):
        build_trg_fast(np.asarray([0, 1]), sizes, 128)


# ----------------------------------------------------------------------
# Full-pipeline parity: build_trgs_fast vs build_trgs(method="scalar")
# ----------------------------------------------------------------------

CONFIGS = st.sampled_from(
    [
        CacheConfig(size=64, line_size=32),
        CacheConfig(size=256, line_size=32),
        CacheConfig(size=8192, line_size=32),
    ]
)


@given(
    trace=random_traces(),
    config=CONFIGS,
    chunk_size=st.sampled_from([16, 48, 256]),
    keep_every=st.sampled_from([None, 2]),
    q_multiplier=st.sampled_from([1, 2, 5]),
)
@settings(max_examples=100, deadline=None)
def test_pipeline_matches_scalar(
    trace, config, chunk_size, keep_every, q_multiplier
):
    popular = popularity_filter(trace, keep_every)
    fast = build_trgs_fast(
        trace,
        config,
        chunk_size=chunk_size,
        popular=popular,
        q_multiplier=q_multiplier,
    )
    scalar = build_trgs(
        trace,
        config,
        chunk_size=chunk_size,
        popular=popular,
        q_multiplier=q_multiplier,
        method="scalar",
    )
    assert fast.select == scalar.select
    assert fast.place == scalar.place
    assert fast.select_stats == scalar.select_stats
    assert fast.place_stats == scalar.place_stats
    assert fast.select.nodes == scalar.select.nodes
    assert fast.place.nodes == scalar.place.nodes
    assert fast.chunk_size == scalar.chunk_size


def test_build_trgs_dispatches_to_fast_by_default():
    program = Program.from_sizes({"a": 64, "b": 128})
    trace = Trace.from_arrays(
        program,
        np.asarray([0, 1, 0, 1]),
        np.asarray([0, 0, 0, 0]),
        np.asarray([64, 128, 64, 128]),
    )
    config = CacheConfig(size=64, line_size=32)
    default = build_trgs(trace, config)
    fast = build_trgs(trace, config, method="fast")
    scalar = build_trgs(trace, config, method="scalar")
    assert default.select == fast.select == scalar.select
    assert default.place == fast.place == scalar.place


def test_build_trgs_rejects_unknown_method():
    program = Program.from_sizes({"a": 64})
    trace = Trace.from_arrays(
        program, np.asarray([0]), np.asarray([0]), np.asarray([64])
    )
    with pytest.raises(ConfigError):
        build_trgs(trace, CacheConfig(size=64, line_size=32), method="turbo")
