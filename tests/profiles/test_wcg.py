"""Tests for WCG construction."""

import pytest

from repro.profiles.wcg import (
    build_wcg,
    build_wcg_from_refs,
    collapse_consecutive,
)
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace

import numpy as np


class TestCollapse:
    def test_collapses_runs(self):
        values = np.asarray([1, 1, 2, 2, 2, 1, 3, 3])
        assert list(collapse_consecutive(values)) == [1, 2, 1, 3]

    def test_empty(self):
        assert len(collapse_consecutive(np.asarray([], dtype=int))) == 0

    def test_no_duplicates_unchanged(self):
        values = np.asarray([1, 2, 3])
        assert list(collapse_consecutive(values)) == [1, 2, 3]


class TestFromRefs:
    def test_counts_transitions(self):
        g = build_wcg_from_refs(["a", "b", "a", "b", "c"])
        assert g.weight("a", "b") == 3
        assert g.weight("b", "c") == 1
        assert g.weight("a", "c") == 0

    def test_consecutive_duplicates_ignored(self):
        g = build_wcg_from_refs(["a", "a", "b", "b", "a"])
        assert g.weight("a", "b") == 2

    def test_isolated_nodes_present(self):
        g = build_wcg_from_refs(["a"])
        assert "a" in g
        assert g.num_edges() == 0

    def test_empty_refs(self):
        g = build_wcg_from_refs([])
        assert len(g) == 0


class TestFromTrace:
    @pytest.fixture
    def program(self):
        return Program.from_sizes({"a": 64, "b": 64, "c": 64, "d": 64})

    def test_matches_refs_builder(self, program):
        names = ["a", "b", "a", "c", "a", "b", "d", "b"]
        trace = Trace(
            program, [TraceEvent.full(n, 64) for n in names]
        )
        from_trace = build_wcg(trace)
        from_refs = build_wcg_from_refs(names)
        assert from_trace == from_refs

    def test_split_extents_do_not_inflate_weights(self, program):
        """An extent split across two events (e.g. wrap) is one visit."""
        trace = Trace(
            program,
            [
                TraceEvent("a", 0, 32),
                TraceEvent("a", 32, 32),
                TraceEvent.full("b", 64),
                TraceEvent.full("a", 64),
            ],
        )
        g = build_wcg(trace)
        assert g.weight("a", "b") == 2

    def test_untouched_procedures_absent(self, program):
        trace = Trace(program, [TraceEvent.full("a", 64)])
        g = build_wcg(trace)
        assert "a" in g
        assert "d" not in g

    def test_empty_trace(self, program):
        g = build_wcg(Trace(program, []))
        assert len(g) == 0


class TestPaperFigure1:
    """Both Figure 1 traces must yield the *same* WCG — the paper's
    motivating observation that the WCG cannot distinguish them."""

    def test_wcg_identical_for_both_traces(self):
        from tests.conftest import figure1_trace1_refs, figure1_trace2_refs

        g1 = build_wcg_from_refs(figure1_trace1_refs())
        g2 = build_wcg_from_refs(figure1_trace2_refs())
        assert g1 == g2

    def test_wcg_weights_are_transition_counts(self):
        from tests.conftest import figure1_trace2_refs

        g = build_wcg_from_refs(figure1_trace2_refs(iterations=40))
        # 40 iterations each of M->X->M->Z: every M-X call+return is 2
        # transitions; our weights are transition counts (2x a classic
        # WCG call count), minus boundary effects between iterations.
        assert g.weight("M", "X") == 80
        assert g.weight("M", "Y") == 80
        # M-Z transitions: Z->M at each loop back-edge too.
        assert g.weight("M", "Z") == 159
        # Sibling leaves never transition directly.
        assert g.weight("X", "Y") == 0
        assert g.weight("X", "Z") == 0
