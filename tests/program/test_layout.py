"""Tests for layouts: construction, validation, cache mapping, padding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.errors import LayoutError
from repro.program.layout import Layout, layouts_equal_mod_cache
from repro.program.procedure import ChunkId
from repro.program.program import Program


@pytest.fixture
def program() -> Program:
    return Program.from_sizes({"a": 100, "b": 60, "c": 200})


@pytest.fixture
def config() -> CacheConfig:
    return CacheConfig(size=256, line_size=32)


class TestConstruction:
    def test_default_is_contiguous_source_order(self, program):
        layout = Layout.default(program)
        assert layout.address_of("a") == 0
        assert layout.address_of("b") == 100
        assert layout.address_of("c") == 160

    def test_default_with_base(self, program):
        layout = Layout.default(program, base=1000)
        assert layout.address_of("a") == 1000

    def test_from_order(self, program):
        layout = Layout.from_order(program, ["c", "a", "b"])
        assert layout.address_of("c") == 0
        assert layout.address_of("a") == 200
        assert layout.address_of("b") == 300

    def test_from_order_with_gaps(self, program):
        layout = Layout.from_order(
            program, ["a", "b", "c"], gaps_before={"b": 28}
        )
        assert layout.address_of("b") == 128
        assert layout.address_of("c") == 188

    def test_from_order_rejects_non_permutation(self, program):
        with pytest.raises(LayoutError):
            Layout.from_order(program, ["a", "b"])
        with pytest.raises(LayoutError):
            Layout.from_order(program, ["a", "b", "b"])

    def test_negative_gap_rejected(self, program):
        with pytest.raises(LayoutError):
            Layout.from_order(program, ["a", "b", "c"], gaps_before={"b": -1})

    def test_negative_base_rejected(self, program):
        with pytest.raises(LayoutError):
            Layout.default(program, base=-4)

    def test_random_is_deterministic(self, program):
        assert Layout.random(program, seed=7) == Layout.random(program, seed=7)

    def test_random_seeds_differ(self, program):
        layouts = {
            tuple(Layout.random(program, seed=s).order_by_address())
            for s in range(20)
        }
        assert len(layouts) > 1


class TestValidation:
    def test_missing_address_rejected(self, program):
        with pytest.raises(LayoutError):
            Layout(program, {"a": 0, "b": 100})

    def test_unknown_procedure_rejected(self, program):
        with pytest.raises(LayoutError):
            Layout(program, {"a": 0, "b": 100, "c": 160, "d": 400})

    def test_overlap_rejected(self, program):
        with pytest.raises(LayoutError):
            Layout(program, {"a": 0, "b": 50, "c": 400})

    def test_negative_address_rejected(self, program):
        with pytest.raises(LayoutError):
            Layout(program, {"a": -4, "b": 100, "c": 300})

    def test_gaps_allowed(self, program):
        layout = Layout(program, {"a": 0, "b": 500, "c": 1000})
        assert layout.gap_total() == 1200 - 360


class TestQueries:
    def test_text_bounds(self, program):
        layout = Layout(program, {"a": 100, "b": 300, "c": 500})
        assert layout.text_start == 100
        assert layout.text_end == 700
        assert layout.text_size == 600

    def test_order_by_address(self, program):
        layout = Layout(program, {"a": 500, "b": 0, "c": 100})
        assert layout.order_by_address() == ["b", "c", "a"]

    def test_items_in_address_order(self, program):
        layout = Layout(program, {"a": 500, "b": 0, "c": 100})
        assert list(layout.items()) == [("b", 0), ("c", 100), ("a", 500)]

    def test_end_address(self, program):
        layout = Layout.default(program)
        assert layout.end_address_of("a") == 100


class TestCacheMapping:
    def test_lines_of(self, program, config):
        layout = Layout.default(program)
        # 'a' is bytes [0, 100) -> memory lines 0..3
        assert list(layout.lines_of("a", config)) == [0, 1, 2, 3]

    def test_cache_sets_wrap(self, program, config):
        # 'c' is 200 bytes at 160: lines 5..11, sets wrap mod 8.
        layout = Layout.default(program)
        assert layout.cache_sets_of("c", config) == {5, 6, 7, 0, 1, 2, 3}

    def test_start_set(self, program, config):
        layout = Layout.default(program)
        assert layout.start_set_of("c", config) == 5

    def test_chunk_address(self, program):
        layout = Layout.default(program)
        assert layout.address_of_chunk(ChunkId("c", 1), chunk_size=64) == 224

    def test_chunk_lines(self, program, config):
        layout = Layout.default(program)
        lines = layout.chunk_lines(ChunkId("a", 0), config, chunk_size=256)
        assert list(lines) == [0, 1, 2, 3]


class TestDerivedLayouts:
    def test_padded_shifts_later_procedures(self, program):
        layout = Layout.default(program).padded(32)
        assert layout.address_of("a") == 0
        assert layout.address_of("b") == 132
        assert layout.address_of("c") == 224

    def test_padded_preserves_existing_gaps(self, program):
        base = Layout(program, {"a": 0, "b": 200, "c": 300})
        padded = base.padded(10)
        assert padded.address_of("b") == 210
        assert padded.address_of("c") == 320

    def test_padded_zero_is_identity(self, program):
        layout = Layout.default(program)
        assert layout.padded(0) == layout

    def test_padded_negative_rejected(self, program):
        with pytest.raises(LayoutError):
            Layout.default(program).padded(-1)

    def test_shifted(self, program):
        layout = Layout.default(program).shifted(64)
        assert layout.address_of("a") == 64

    def test_equal_mod_cache(self, program, config):
        base = Layout.default(program)
        shifted = base.shifted(config.size)
        assert layouts_equal_mod_cache(base, shifted, config)
        assert not layouts_equal_mod_cache(
            base, base.shifted(32), config
        )


@given(seed=st.integers(0, 1000))
def test_random_layout_is_always_valid(seed):
    program = Program.from_sizes({f"p{i}": 10 * (i + 1) for i in range(8)})
    layout = Layout.random(program, seed=seed)
    # Validation happens in the constructor; additionally the layout
    # must be gap-free and cover exactly the program size.
    assert layout.text_size == program.total_size
    assert sorted(layout.order_by_address()) == sorted(program.names)


@given(
    pad=st.integers(0, 100),
    sizes=st.lists(st.integers(1, 500), min_size=1, max_size=10),
)
def test_padded_increases_text_size_linearly(pad, sizes):
    program = Program.from_sizes(
        {f"p{i}": size for i, size in enumerate(sizes)}
    )
    base = Layout.default(program)
    padded = base.padded(pad)
    assert padded.text_size == base.text_size + pad * (len(sizes) - 1)
