"""Tests for procedures and chunking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProgramError
from repro.program.procedure import ChunkId, Procedure


class TestProcedureValidation:
    def test_valid_procedure(self):
        proc = Procedure("f", 100)
        assert proc.name == "f"
        assert proc.size == 100

    def test_empty_name_rejected(self):
        with pytest.raises(ProgramError):
            Procedure("", 100)

    def test_zero_size_rejected(self):
        with pytest.raises(ProgramError):
            Procedure("f", 0)

    def test_negative_size_rejected(self):
        with pytest.raises(ProgramError):
            Procedure("f", -1)


class TestChunking:
    def test_exact_multiple(self):
        proc = Procedure("f", 512)
        assert proc.num_chunks(256) == 2

    def test_rounds_up(self):
        proc = Procedure("f", 513)
        assert proc.num_chunks(256) == 3

    def test_small_procedure_one_chunk(self):
        proc = Procedure("f", 10)
        assert proc.num_chunks(256) == 1

    def test_chunks_enumeration(self):
        proc = Procedure("f", 600)
        chunks = list(proc.chunks(256))
        assert chunks == [ChunkId("f", 0), ChunkId("f", 1), ChunkId("f", 2)]

    def test_last_chunk_partial_size(self):
        proc = Procedure("f", 600)
        assert proc.chunk_size_of(0, 256) == 256
        assert proc.chunk_size_of(1, 256) == 256
        assert proc.chunk_size_of(2, 256) == 88

    def test_full_last_chunk(self):
        proc = Procedure("f", 512)
        assert proc.chunk_size_of(1, 256) == 256

    def test_chunk_index_out_of_range(self):
        proc = Procedure("f", 100)
        with pytest.raises(ProgramError):
            proc.chunk_size_of(1, 256)

    def test_invalid_chunk_size(self):
        proc = Procedure("f", 100)
        with pytest.raises(ProgramError):
            proc.num_chunks(0)

    def test_chunk_of_offset(self):
        proc = Procedure("f", 600)
        assert proc.chunk_of_offset(0, 256) == ChunkId("f", 0)
        assert proc.chunk_of_offset(255, 256) == ChunkId("f", 0)
        assert proc.chunk_of_offset(256, 256) == ChunkId("f", 1)
        assert proc.chunk_of_offset(599, 256) == ChunkId("f", 2)

    def test_chunk_of_offset_out_of_bounds(self):
        proc = Procedure("f", 100)
        with pytest.raises(ProgramError):
            proc.chunk_of_offset(100, 256)

    def test_chunks_of_extent(self):
        proc = Procedure("f", 1000)
        chunks = list(proc.chunks_of_extent(200, 200, 256))
        assert chunks == [ChunkId("f", 0), ChunkId("f", 1)]

    def test_chunks_of_extent_single(self):
        proc = Procedure("f", 1000)
        assert list(proc.chunks_of_extent(0, 1, 256)) == [ChunkId("f", 0)]

    def test_chunks_of_empty_extent(self):
        proc = Procedure("f", 1000)
        assert list(proc.chunks_of_extent(0, 0, 256)) == []

    def test_chunks_of_extent_out_of_bounds(self):
        proc = Procedure("f", 100)
        with pytest.raises(ProgramError):
            list(proc.chunks_of_extent(50, 100, 256))

    @given(size=st.integers(1, 10_000), chunk_size=st.integers(1, 512))
    def test_chunk_sizes_sum_to_procedure_size(self, size, chunk_size):
        proc = Procedure("f", size)
        total = sum(
            proc.chunk_size_of(i, chunk_size)
            for i in range(proc.num_chunks(chunk_size))
        )
        assert total == size

    @given(
        size=st.integers(1, 10_000),
        chunk_size=st.integers(1, 512),
        data=st.data(),
    )
    def test_extent_chunks_are_contiguous(self, size, chunk_size, data):
        proc = Procedure("f", size)
        start = data.draw(st.integers(0, size - 1))
        length = data.draw(st.integers(1, size - start))
        chunks = list(proc.chunks_of_extent(start, length, chunk_size))
        indices = [c.index for c in chunks]
        assert indices == list(range(indices[0], indices[-1] + 1))
        assert indices[0] == start // chunk_size
        assert indices[-1] == (start + length - 1) // chunk_size


class TestChunkId:
    def test_str(self):
        assert str(ChunkId("f", 3)) == "f#3"

    def test_equality_and_hash(self):
        assert ChunkId("f", 1) == ChunkId("f", 1)
        assert ChunkId("f", 1) != ChunkId("f", 2)
        assert len({ChunkId("f", 1), ChunkId("f", 1)}) == 1
