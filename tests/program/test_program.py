"""Tests for the Program container."""

import pytest

from repro.errors import ProgramError
from repro.program.procedure import ChunkId, Procedure
from repro.program.program import Program


@pytest.fixture
def program() -> Program:
    return Program.from_sizes({"a": 100, "b": 200, "c": 300})


class TestConstruction:
    def test_from_sizes_preserves_order(self, program):
        assert program.names == ("a", "b", "c")

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ProgramError):
            Program([Procedure("a", 10), Procedure("a", 20)])

    def test_from_procedures(self):
        program = Program([Procedure("x", 5), Procedure("y", 6)])
        assert program.names == ("x", "y")


class TestQueries:
    def test_len(self, program):
        assert len(program) == 3

    def test_contains(self, program):
        assert "a" in program
        assert "nope" not in program

    def test_getitem(self, program):
        assert program["b"].size == 200

    def test_getitem_unknown_raises(self, program):
        with pytest.raises(ProgramError):
            program["nope"]

    def test_total_size(self, program):
        assert program.total_size == 600

    def test_size_of(self, program):
        assert program.size_of("c") == 300

    def test_subset_size(self, program):
        assert program.subset_size(["a", "c"]) == 400

    def test_iteration_yields_procedures(self, program):
        assert [p.name for p in program] == ["a", "b", "c"]

    def test_equality(self, program):
        same = Program.from_sizes({"a": 100, "b": 200, "c": 300})
        different = Program.from_sizes({"a": 100, "b": 200, "c": 301})
        assert program == same
        assert program != different

    def test_hashable(self, program):
        same = Program.from_sizes({"a": 100, "b": 200, "c": 300})
        assert len({program, same}) == 1


class TestChunks:
    def test_all_chunks_in_order(self):
        program = Program.from_sizes({"a": 300, "b": 100})
        chunks = list(program.all_chunks(256))
        assert chunks == [
            ChunkId("a", 0),
            ChunkId("a", 1),
            ChunkId("b", 0),
        ]

    def test_num_chunks(self):
        program = Program.from_sizes({"a": 300, "b": 100})
        assert program.num_chunks(256) == 3
