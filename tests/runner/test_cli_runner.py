"""CLI-level batch runner tests: the kill-and-resume contract.

These drive ``repro-layout compare/table1 --checkpoint`` end to end on
a drastically scaled-down workload, asserting the acceptance
invariants: an interrupted batch exits 130 with a one-line resume
hint, ``--resume`` reproduces the uninterrupted report byte for byte,
the run manifest's runner metrics agree with the journal (no task is
double-counted), and the checkpoint directory passes
``repro-layout check`` cleanly.
"""

import json
import os

import pytest

from repro import cli
from repro.analysis import audit_manifest, load_run_manifest
from repro.runner import (
    FAULTPLAN_FORMAT,
    FAULTPLAN_VERSION,
    load_journal,
)
from repro.workloads import suite as suite_module

#: compare --runs 1 grid: 1 profile + 4 algorithms x (clean + 1 seed).
COMPARE_TASKS = 9

#: ``REPRO_TEST_WORKERS=N`` reruns every checkpointed invocation in
#: this module through the fork pool — CI uses it to exercise the
#: parallel backend against the exact same assertions as serial runs.
TEST_WORKERS = os.environ.get("REPRO_TEST_WORKERS")

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"),
    reason="the pool backend requires the fork start method",
)


@pytest.fixture
def tiny_workload(monkeypatch):
    workload = suite_module.by_name("m88ksim").scaled(0.02)
    monkeypatch.setattr(cli, "by_name", lambda _name: workload)
    monkeypatch.setattr(cli, "SUITE", [workload])
    return workload


def write_plan(path, injections: list[dict]) -> str:
    path.write_text(
        json.dumps(
            {
                "format": FAULTPLAN_FORMAT,
                "version": FAULTPLAN_VERSION,
                "injections": injections,
            }
        )
    )
    return str(path)


def compare_argv(checkpoint, *extra: str) -> list[str]:
    argv = [
        "compare",
        "m88ksim",
        "--runs",
        "1",
        "--checkpoint",
        str(checkpoint),
        *extra,
    ]
    if TEST_WORKERS:
        argv += ["--workers", TEST_WORKERS]
    return argv


class TestCleanBatch:
    def test_compare_checkpoint_exits_0(
        self, tiny_workload, tmp_path, capsys
    ):
        assert cli.main(compare_argv(tmp_path / "ck")) == 0
        out = capsys.readouterr().out
        assert "m88ksim:" in out
        state = load_journal(tmp_path / "ck" / "checkpoint.jsonl")
        assert len(state.completed()) == COMPARE_TASKS

    def test_checkpoint_dir_passes_check(
        self, tiny_workload, tmp_path, capsys
    ):
        assert cli.main(compare_argv(tmp_path / "ck")) == 0
        capsys.readouterr()
        assert cli.main(["check", str(tmp_path / "ck")]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_table1_checkpoint_matches_direct(
        self, tiny_workload, tmp_path, capsys
    ):
        assert cli.main(["table1"]) == 0
        direct = capsys.readouterr().out
        argv = ["table1", "--checkpoint", str(tmp_path / "ck")]
        if TEST_WORKERS:
            argv += ["--workers", TEST_WORKERS]
        assert cli.main(argv) == 0
        assert capsys.readouterr().out == direct


class TestInterruptAndResume:
    def test_interrupt_exits_130_with_hint(
        self, tiny_workload, tmp_path, capsys
    ):
        plan = write_plan(
            tmp_path / "plan.json",
            [{"task": "cell:*:HKC:clean", "error": "interrupt"}],
        )
        code = cli.main(
            compare_argv(tmp_path / "ck", "--inject", plan)
        )
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted — resume with --resume" in err
        assert "Traceback" not in err

    def test_resume_reproduces_uninterrupted_report(
        self, tiny_workload, tmp_path, capsys
    ):
        assert cli.main(compare_argv(tmp_path / "ref")) == 0
        reference = capsys.readouterr().out

        plan = write_plan(
            tmp_path / "plan.json",
            [{"task": "cell:*:HKC:clean", "error": "interrupt"}],
        )
        assert (
            cli.main(compare_argv(tmp_path / "ck", "--inject", plan))
            == 130
        )
        capsys.readouterr()
        journaled = len(
            load_journal(
                tmp_path / "ck" / "checkpoint.jsonl"
            ).completed()
        )
        assert 0 < journaled < COMPARE_TASKS

        metrics = tmp_path / "resume.jsonl"
        code = cli.main(
            compare_argv(
                tmp_path / "ck",
                "--resume",
                "--metrics-out",
                str(metrics),
            )
        )
        assert code == 0
        assert capsys.readouterr().out == reference

        # Manifest counters agree with the journal: every task ran
        # exactly once across the two processes.
        manifest = load_run_manifest(metrics)
        counters = manifest["metrics"]
        cached = counters["runner.task.cached"]["value"]
        completed = counters["runner.task.completed"]["value"]
        assert cached == journaled
        assert cached + completed == COMPARE_TASKS

    def test_simulated_kill_exits_137_then_resumes(
        self, tiny_workload, tmp_path, capsys
    ):
        plan = write_plan(
            tmp_path / "plan.json",
            [{"task": "cell:*:PH:clean", "error": "kill"}],
        )
        assert (
            cli.main(compare_argv(tmp_path / "ck", "--inject", plan))
            == 137
        )
        capsys.readouterr()
        assert (
            cli.main(compare_argv(tmp_path / "ck", "--resume")) == 0
        )


class TestDegradedBatch:
    def test_permanent_fault_degrades_exit_1(
        self, tiny_workload, tmp_path, capsys
    ):
        plan = write_plan(
            tmp_path / "plan.json",
            [
                {
                    "task": "cell:*:GBSC:p000",
                    "error": "permanent",
                    "message": "injected permanent fault",
                }
            ],
        )
        code = cli.main(
            compare_argv(tmp_path / "ck", "--inject", plan)
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "failures:" in captured.out
        assert "injected permanent fault" in captured.out
        assert "batch degraded: 1 failed" in captured.err
        assert "Traceback" not in captured.err

    def test_degraded_checkpoint_still_passes_check(
        self, tiny_workload, tmp_path, capsys
    ):
        plan = write_plan(
            tmp_path / "plan.json",
            [{"task": "cell:*:GBSC:p000", "error": "permanent"}],
        )
        assert (
            cli.main(compare_argv(tmp_path / "ck", "--inject", plan))
            == 1
        )
        capsys.readouterr()
        assert cli.main(["check", str(tmp_path / "ck")]) == 0

    def test_transient_fault_is_retried_to_success(
        self, tiny_workload, tmp_path, capsys
    ):
        plan = write_plan(
            tmp_path / "plan.json",
            [{"task": "profile:*", "error": "transient", "times": 2}],
        )
        code = cli.main(
            compare_argv(tmp_path / "ck", "--inject", plan)
        )
        assert code == 0
        state = load_journal(tmp_path / "ck" / "checkpoint.jsonl")
        assert state.completed()["profile:m88ksim"]["retries"] == 2


@needs_fork
class TestParallelCli:
    """``--workers N`` end to end: byte-identity with serial runs,
    kill-and-resume, and manifest/journal reconciliation."""

    def test_parallel_report_matches_serial(
        self, tiny_workload, tmp_path, capsys
    ):
        assert cli.main(compare_argv(tmp_path / "ref")) == 0
        serial = capsys.readouterr().out
        assert (
            cli.main(
                compare_argv(tmp_path / "ck", "--workers", "2")
            )
            == 0
        )
        assert capsys.readouterr().out == serial

    def test_kill_exits_137_then_parallel_resume_matches(
        self, tiny_workload, tmp_path, capsys
    ):
        assert cli.main(compare_argv(tmp_path / "ref")) == 0
        reference = capsys.readouterr().out
        plan = write_plan(
            tmp_path / "plan.json",
            [{"task": "cell:*:PH:clean", "error": "kill"}],
        )
        assert (
            cli.main(
                compare_argv(
                    tmp_path / "ck",
                    "--inject",
                    plan,
                    "--workers",
                    "2",
                )
            )
            == 137
        )
        capsys.readouterr()
        assert (
            cli.main(
                compare_argv(
                    tmp_path / "ck", "--resume", "--workers", "2"
                )
            )
            == 0
        )
        assert capsys.readouterr().out == reference

    def test_manifest_worker_counters_reconcile(
        self, tiny_workload, tmp_path, capsys
    ):
        metrics = tmp_path / "run.jsonl"
        code = cli.main(
            compare_argv(
                tmp_path / "ck",
                "--workers",
                "2",
                "--metrics-out",
                str(metrics),
            )
        )
        assert code == 0
        manifest = load_run_manifest(metrics)
        counters = manifest["metrics"]
        assert (
            counters["runner.worker.tasks"]["value"] == COMPARE_TASKS
        )
        assert (
            counters["runner.task.completed"]["value"]
            == COMPARE_TASKS
        )
        assert audit_manifest(manifest) == []

    def test_parallel_checkpoint_passes_check(
        self, tiny_workload, tmp_path, capsys
    ):
        assert (
            cli.main(
                compare_argv(tmp_path / "ck", "--workers", "2")
            )
            == 0
        )
        capsys.readouterr()
        assert cli.main(["check", str(tmp_path / "ck")]) == 0
        assert "no findings" in capsys.readouterr().out


class TestRunnerArgumentErrors:
    def test_resume_without_checkpoint_exits_2(
        self, tiny_workload, capsys
    ):
        code = cli.main(["compare", "m88ksim", "--resume"])
        assert code == 2
        assert "require --checkpoint" in capsys.readouterr().err

    def test_workers_without_checkpoint_exits_2(
        self, tiny_workload, capsys
    ):
        code = cli.main(
            ["compare", "m88ksim", "--workers", "2"]
        )
        assert code == 2
        assert "require --checkpoint" in capsys.readouterr().err

    def test_workers_zero_exits_2(
        self, tiny_workload, tmp_path, capsys
    ):
        code = cli.main(
            [
                "compare",
                "m88ksim",
                "--checkpoint",
                str(tmp_path / "ck"),
                "--workers",
                "0",
            ]
        )
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_missing_inject_plan_exits_2(
        self, tiny_workload, tmp_path, capsys
    ):
        code = cli.main(
            compare_argv(
                tmp_path / "ck",
                "--inject",
                str(tmp_path / "absent.json"),
            )
        )
        assert code == 2
        assert "fault plan" in capsys.readouterr().err

    def test_reusing_checkpoint_without_resume_exits_2(
        self, tiny_workload, tmp_path, capsys
    ):
        assert cli.main(compare_argv(tmp_path / "ck")) == 0
        capsys.readouterr()
        code = cli.main(compare_argv(tmp_path / "ck"))
        assert code == 2
        assert "--resume" in capsys.readouterr().err
