"""BatchRunner: checkpointing, resume invariance, degraded mode.

Uses synthetic batches (no workloads) so each test runs in
milliseconds; the CLI-level tests in ``test_cli_runner.py`` cover the
real grids.
"""

import json

import pytest

from repro.chaos.plan import IoInjection
from repro.errors import RunnerError, SimulatedCrash
from repro.runner import (
    Batch,
    BatchRunner,
    FaultPlan,
    Injection,
    SimulatedKill,
    TaskSpec,
    load_journal,
    null_sleep,
)

def make_batch(
    n: int = 3, grid: str = "grid-a", calls: list | None = None
) -> Batch:
    tasks = []
    for index in range(1, n + 1):
        def body(env, index=index):
            if calls is not None:
                calls.append(f"t:{index}")
            return {"value": index * 10}

        tasks.append(
            TaskSpec(
                key=f"t:{index}",
                kind="unit",
                run=body,
                artifact=f"t{index}.json",
            )
        )

    def render(results):
        if not results:
            return "empty"
        return "\n".join(
            f"{key}={results[key]['value']}" for key in sorted(results)
        )

    return Batch(
        command="test",
        grid_id=grid,
        tasks=tuple(tasks),
        render=render,
        metadata={"n": n},
    )


def runner(batch: Batch, directory, **kwargs) -> BatchRunner:
    kwargs.setdefault("sleep", lambda seconds: None)
    return BatchRunner(batch, directory, **kwargs)


class TestCleanRun:
    def test_all_tasks_complete(self, tmp_path):
        outcome = runner(make_batch(), tmp_path).run()
        assert outcome.ok
        assert outcome.exit_code == 0
        assert outcome.executed == 3
        assert outcome.cached == 0
        assert outcome.report == "t:1=10\nt:2=20\nt:3=30"

    def test_artifacts_written(self, tmp_path):
        runner(make_batch(), tmp_path).run()
        for name in ("t1.json", "t2.json", "t3.json"):
            payload = json.loads((tmp_path / name).read_text())
            assert "value" in payload

    def test_journal_records(self, tmp_path):
        batch = make_batch()
        runner(batch, tmp_path).run()
        state = load_journal(tmp_path / "checkpoint.jsonl")
        assert state.header["grid"] == "grid-a"
        assert state.header["tasks"] == 3
        assert set(state.completed()) == {"t:1", "t:2", "t:3"}

    def test_existing_journal_without_resume_raises(self, tmp_path):
        runner(make_batch(), tmp_path).run()
        with pytest.raises(RunnerError, match="--resume"):
            runner(make_batch(), tmp_path).run()

    def test_non_dict_payload_is_structured_failure(self, tmp_path):
        batch = make_batch()
        bad = TaskSpec(
            key="t:bad", kind="unit", run=lambda env: [1, 2]
        )
        batch = Batch(
            command="test",
            grid_id="grid-bad",
            tasks=(*batch.tasks, bad),
            render=batch.render,
        )
        outcome = runner(batch, tmp_path).run()
        assert outcome.exit_code == 1
        (failure,) = outcome.failures
        assert failure.key == "t:bad"
        assert "expected a JSON-able dict" in failure.message


class TestResume:
    def test_full_resume_is_all_cached(self, tmp_path):
        batch = make_batch()
        first = runner(batch, tmp_path).run()
        calls: list[str] = []
        second = runner(
            make_batch(calls=calls), tmp_path, resume=True
        ).run()
        assert second.cached == 3
        assert second.executed == 0
        assert calls == []
        assert second.report == first.report

    def test_grid_mismatch_raises(self, tmp_path):
        runner(make_batch(grid="grid-a"), tmp_path).run()
        with pytest.raises(RunnerError, match="fresh checkpoint"):
            runner(
                make_batch(grid="grid-b"), tmp_path, resume=True
            ).run()

    def test_missing_artifact_reruns_task(self, tmp_path):
        runner(make_batch(), tmp_path).run()
        (tmp_path / "t2.json").unlink()
        calls: list[str] = []
        outcome = runner(
            make_batch(calls=calls), tmp_path, resume=True
        ).run()
        assert calls == ["t:2"]
        assert outcome.ok
        assert outcome.report == "t:1=10\nt:2=20\nt:3=30"

    def test_corrupt_artifact_reruns_task(self, tmp_path):
        runner(make_batch(), tmp_path).run()
        (tmp_path / "t3.json").write_text("{ torn")
        calls: list[str] = []
        outcome = runner(
            make_batch(calls=calls), tmp_path, resume=True
        ).run()
        assert calls == ["t:3"]
        assert outcome.ok


class TestFaults:
    def test_transient_fault_is_retried(self, tmp_path):
        plan = FaultPlan([Injection(task="t:2", error="transient")])
        outcome = runner(make_batch(), tmp_path, plan=plan).run()
        assert outcome.ok
        assert plan.exhausted
        state = load_journal(tmp_path / "checkpoint.jsonl")
        assert state.completed()["t:2"]["retries"] == 1

    def test_permanent_fault_degrades(self, tmp_path):
        plan = FaultPlan(
            [Injection(task="t:2", error="permanent", message="bad")]
        )
        outcome = runner(make_batch(), tmp_path, plan=plan).run()
        assert outcome.exit_code == 1
        (failure,) = outcome.failures
        assert failure.key == "t:2"
        assert not failure.transient
        assert "failures:" in outcome.report
        assert "t:2: RunnerError (permanent, retries=0): bad" in (
            outcome.report
        )
        # The rest of the grid still ran.
        assert set(outcome.results) == {"t:1", "t:3"}

    def test_failed_task_reruns_on_resume(self, tmp_path):
        plan = FaultPlan([Injection(task="t:2", error="permanent")])
        degraded = runner(make_batch(), tmp_path, plan=plan).run()
        assert degraded.exit_code == 1
        clean = runner(make_batch(), tmp_path, resume=True).run()
        assert clean.ok
        assert clean.cached == 2
        assert clean.executed == 1
        reference = runner(make_batch(), tmp_path / "ref").run()
        assert clean.report == reference.report

    def test_retry_budget_exhaustion_is_transient_failure(
        self, tmp_path
    ):
        plan = FaultPlan(
            [Injection(task="t:1", error="transient", times=10)]
        )
        outcome = runner(
            make_batch(), tmp_path, plan=plan, retries=2
        ).run()
        (failure,) = outcome.failures
        assert failure.transient
        assert failure.retries == 2

    def test_max_failures_aborts_batch(self, tmp_path):
        plan = FaultPlan([Injection(task="t:1", error="permanent")])
        outcome = runner(
            make_batch(), tmp_path, plan=plan, max_failures=0
        ).run()
        assert outcome.exit_code == 1
        assert outcome.pending == ("t:2", "t:3")
        assert "not attempted" in outcome.report


class TestSleeperDefaults:
    def test_fault_plan_defaults_to_null_sleep(self, tmp_path):
        """Injected faults are simulations; their retry backoff must
        not burn real wall time unless a sleeper is passed in."""
        plan = FaultPlan([Injection(task="t:1", error="transient")])
        engine = BatchRunner(make_batch(), tmp_path, plan=plan)
        assert engine._sleep is null_sleep

    def test_no_plan_keeps_real_backoff(self, tmp_path):
        engine = BatchRunner(make_batch(), tmp_path)
        assert engine._sleep is None

    def test_explicit_sleeper_wins_over_plan_default(self, tmp_path):
        plan = FaultPlan([Injection(task="t:1", error="transient")])
        sleeps: list[float] = []
        outcome = BatchRunner(
            make_batch(), tmp_path, plan=plan, sleep=sleeps.append
        ).run()
        assert outcome.ok
        assert sleeps  # the injected sleeper observed the backoff


class TestKillAndResume:
    def test_kill_mid_batch_then_resume_byte_identical(self, tmp_path):
        reference = runner(make_batch(), tmp_path / "ref").run()
        plan = FaultPlan([Injection(task="t:2", error="kill")])
        with pytest.raises(SimulatedKill):
            runner(make_batch(), tmp_path / "ck", plan=plan).run()
        state = load_journal(tmp_path / "ck" / "checkpoint.jsonl")
        assert set(state.completed()) == {"t:1"}
        resumed = runner(
            make_batch(), tmp_path / "ck", resume=True
        ).run()
        assert resumed.cached == 1
        assert resumed.executed == 2
        assert resumed.report == reference.report

    def test_interrupt_propagates(self, tmp_path):
        plan = FaultPlan([Injection(task="t:3", error="interrupt")])
        with pytest.raises(KeyboardInterrupt):
            runner(make_batch(), tmp_path, plan=plan).run()
        # Everything before the interrupt is durable.
        state = load_journal(tmp_path / "checkpoint.jsonl")
        assert set(state.completed()) == {"t:1", "t:2"}

    def test_kill_during_artifact_write_leaves_no_partial(
        self, tmp_path
    ):
        plan = FaultPlan(
            [Injection(task="t:1", point="artifact", error="kill")]
        )
        with pytest.raises(SimulatedKill):
            runner(make_batch(), tmp_path, plan=plan).run()
        assert not (tmp_path / "t1.json").exists()
        assert not list(tmp_path.glob("*.tmp"))
        state = load_journal(tmp_path / "checkpoint.jsonl")
        assert state.completed() == {}
        resumed = runner(make_batch(), tmp_path, resume=True).run()
        assert resumed.ok
        assert (tmp_path / "t1.json").exists()

    def test_transient_fault_during_artifact_write_is_retried(
        self, tmp_path
    ):
        plan = FaultPlan(
            [Injection(task="t:1", point="artifact", error="transient")]
        )
        outcome = runner(make_batch(), tmp_path, plan=plan).run()
        assert outcome.ok
        payload = json.loads((tmp_path / "t1.json").read_text())
        assert payload == {"value": 10}


class TestIoFaultPlan:
    """Faultplan v2 ``io`` entries, installed for the run's duration."""

    def test_crash_mid_artifact_write_then_resume_byte_identical(
        self, tmp_path
    ):
        reference = runner(make_batch(), tmp_path / "ref").run()
        plan = FaultPlan(
            io=[IoInjection(site="runner.artifact", point="data",
                            error="crash", skip=1)]
        )
        with pytest.raises(SimulatedCrash):
            runner(make_batch(), tmp_path / "ck", plan=plan).run()
        # The power cut stranded the second artifact's temp file.
        assert list((tmp_path / "ck").glob("*.tmp"))
        assert not (tmp_path / "ck" / "t2.json").exists()
        resumed = runner(
            make_batch(), tmp_path / "ck", resume=True
        ).run()
        assert resumed.ok
        assert resumed.report == reference.report
        # The resume sweep reclaimed the stranded temp.
        assert not list((tmp_path / "ck").glob("*.tmp"))

    def test_torn_journal_tail_then_resume_byte_identical(
        self, tmp_path
    ):
        reference = runner(make_batch(), tmp_path / "ref").run()
        plan = FaultPlan(
            io=[IoInjection(site="runner.journal", point="data",
                            error="torn", skip=2)]
        )
        with pytest.raises(SimulatedCrash):
            runner(make_batch(), tmp_path / "ck", plan=plan).run()
        resumed = runner(
            make_batch(), tmp_path / "ck", resume=True
        ).run()
        assert resumed.ok
        assert resumed.report == reference.report

    def test_torn_journal_header_resumes_fresh(self, tmp_path):
        plan = FaultPlan(
            io=[IoInjection(site="runner.journal", point="data",
                            error="torn")]
        )
        with pytest.raises(SimulatedCrash):
            runner(make_batch(), tmp_path, plan=plan).run()
        # The journal is a header-less husk: resume must drop it and
        # start fresh rather than append after a torn first line.
        resumed = runner(make_batch(), tmp_path, resume=True).run()
        assert resumed.ok
        assert resumed.cached == 0
        assert resumed.executed == 3
        state = load_journal(tmp_path / "checkpoint.jsonl")
        assert state.header is not None
        assert not state.truncated

    def test_io_plan_uninstalled_after_run(self, tmp_path):
        from repro.chaos import sites

        plan = FaultPlan(
            io=[IoInjection(site="runner.journal", error="torn")]
        )
        with pytest.raises(SimulatedCrash):
            runner(make_batch(), tmp_path, plan=plan).run()
        assert sites.active() is None
