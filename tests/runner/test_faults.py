"""Fault plans: validation, deterministic firing, serialisation."""

import json

import pytest

from repro.chaos.plan import IoInjection
from repro.errors import RunnerError, TaskTimeout, TransientTaskError
from repro.runner import (
    FAULTPLAN_FORMAT,
    FAULTPLAN_VERSION,
    FaultPlan,
    Injection,
    SimulatedKill,
    load_plan,
)


class TestInjectionValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(RunnerError, match="point"):
            Injection(task="t:1", point="middle")

    def test_unknown_error_rejected(self):
        with pytest.raises(RunnerError, match="error"):
            Injection(task="t:1", error="cosmic-ray")

    def test_zero_times_rejected(self):
        with pytest.raises(RunnerError, match="times"):
            Injection(task="t:1", times=0)


class TestFiring:
    def test_exact_match_fires(self):
        plan = FaultPlan([Injection(task="t:1", error="transient")])
        with pytest.raises(TransientTaskError):
            plan.fire("t:1", "start")
        assert plan.fired == [("t:1", "start", "transient")]

    def test_glob_match_fires(self):
        plan = FaultPlan([Injection(task="cell:*:GBSC:*")])
        with pytest.raises(TransientTaskError):
            plan.fire("cell:perl:GBSC:p003", "start")

    def test_non_matching_task_is_silent(self):
        plan = FaultPlan([Injection(task="t:1")])
        plan.fire("t:2", "start")
        assert plan.fired == []

    def test_non_matching_point_is_silent(self):
        plan = FaultPlan([Injection(task="t:1", point="finish")])
        plan.fire("t:1", "start")
        assert plan.fired == []

    def test_times_countdown(self):
        plan = FaultPlan([Injection(task="t:*", times=2)])
        with pytest.raises(TransientTaskError):
            plan.fire("t:1", "start")
        with pytest.raises(TransientTaskError):
            plan.fire("t:1", "start")
        plan.fire("t:1", "start")  # spent: silent
        assert len(plan.fired) == 2
        assert plan.exhausted

    def test_declaration_order_wins(self):
        plan = FaultPlan(
            [
                Injection(task="t:*", error="transient"),
                Injection(task="t:1", error="permanent"),
            ]
        )
        with pytest.raises(TransientTaskError):
            plan.fire("t:1", "start")
        with pytest.raises(RunnerError):
            plan.fire("t:1", "start")

    def test_empty_plan_is_exhausted(self):
        assert FaultPlan().exhausted

    @pytest.mark.parametrize(
        "kind, exc",
        [
            ("transient", TransientTaskError),
            ("permanent", RunnerError),
            ("timeout", TaskTimeout),
            ("interrupt", KeyboardInterrupt),
            ("kill", SimulatedKill),
        ],
    )
    def test_error_kinds(self, kind, exc):
        plan = FaultPlan([Injection(task="t:1", error=kind)])
        with pytest.raises(exc):
            plan.fire("t:1", "start")

    def test_custom_message(self):
        plan = FaultPlan(
            [Injection(task="t:1", error="permanent", message="disk full")]
        )
        with pytest.raises(RunnerError, match="disk full"):
            plan.fire("t:1", "start")


class TestSerialisation:
    def test_roundtrip(self):
        plan = FaultPlan(
            [
                Injection(task="t:1", point="finish", error="kill"),
                Injection(task="t:*", times=3, message="m"),
            ]
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.injections == plan.injections

    def test_load_plan(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {
                    "format": FAULTPLAN_FORMAT,
                    "version": FAULTPLAN_VERSION,
                    "injections": [{"task": "t:1", "error": "permanent"}],
                }
            )
        )
        plan = load_plan(path)
        assert plan.injections[0].task == "t:1"

    def test_load_plan_missing_file(self, tmp_path):
        with pytest.raises(RunnerError, match="cannot read fault plan"):
            load_plan(tmp_path / "absent.json")

    def test_wrong_format_rejected(self):
        with pytest.raises(RunnerError, match="faultplan"):
            FaultPlan.from_dict({"format": "repro/layout", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(RunnerError, match="version"):
            FaultPlan.from_dict(
                {"format": FAULTPLAN_FORMAT, "version": 99}
            )

    def test_malformed_entry_rejected(self):
        with pytest.raises(RunnerError, match="malformed"):
            FaultPlan.from_dict(
                {
                    "format": FAULTPLAN_FORMAT,
                    "version": FAULTPLAN_VERSION,
                    "injections": [{"point": "start"}],
                }
            )


class TestVersion2IoSection:
    def test_io_section_parses(self):
        plan = FaultPlan.from_dict(
            {
                "format": FAULTPLAN_FORMAT,
                "version": 2,
                "injections": [],
                "io": [
                    {"site": "store.index", "point": "replace",
                     "error": "torn"},
                ],
            }
        )
        assert plan.io == (
            IoInjection(site="store.index", point="replace",
                        error="torn"),
        )
        assert plan.io_plan is not None

    def test_io_section_requires_version_2(self):
        with pytest.raises(RunnerError, match="version 2"):
            FaultPlan.from_dict(
                {
                    "format": FAULTPLAN_FORMAT,
                    "version": 1,
                    "io": [{"site": "store.index"}],
                }
            )

    def test_version_1_plans_still_parse(self):
        plan = FaultPlan.from_dict(
            {
                "format": FAULTPLAN_FORMAT,
                "version": 1,
                "injections": [{"task": "t:1"}],
            }
        )
        assert plan.io == ()
        assert plan.io_plan is None

    def test_malformed_io_entry_rejected(self):
        with pytest.raises(RunnerError, match="io section"):
            FaultPlan.from_dict(
                {
                    "format": FAULTPLAN_FORMAT,
                    "version": 2,
                    "io": [{"site": "store.index", "error": "gremlin"}],
                }
            )

    def test_to_dict_emits_v1_without_io(self):
        # Pre-existing v1 plan files must round-trip byte-identically.
        assert FaultPlan([Injection(task="t:1")]).to_dict()["version"] == 1

    def test_to_dict_emits_v2_with_io(self):
        plan = FaultPlan(io=[IoInjection(site="store.blob")])
        payload = plan.to_dict()
        assert payload["version"] == FAULTPLAN_VERSION
        assert payload["io"] == [
            {"site": "store.blob", "point": "data", "error": "eio",
             "times": 1}
        ]
        clone = FaultPlan.from_dict(payload)
        assert clone.io == plan.io
