"""TaskGuard: retry schedules, failure conversion, deadline, and
BaseException passthrough."""

import time

import pytest

from repro.errors import RunnerError, TaskTimeout, TransientTaskError
from repro.runner import TaskGuard, null_sleep
from repro.runner.faults import SimulatedKill


def make_guard(**kwargs) -> tuple[TaskGuard, list[float]]:
    sleeps: list[float] = []
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("backoff_base", 0.05)
    guard = TaskGuard("t:1", sleep=sleeps.append, **kwargs)
    return guard, sleeps


class TestSuccess:
    def test_value_returned(self):
        guard, sleeps = make_guard()
        outcome = guard.run(lambda attempt: {"value": 42})
        assert outcome.ok
        assert outcome.value == {"value": 42}
        assert outcome.retries == 0
        assert sleeps == []

    def test_attempt_index_passed(self):
        guard, _ = make_guard()
        seen: list[int] = []

        def body(attempt: int) -> dict:
            seen.append(attempt)
            return {}

        guard.run(body)
        assert seen == [0]


class TestTransientRetry:
    def test_retried_until_success(self):
        guard, sleeps = make_guard(retries=3)
        calls = []

        def body(attempt: int) -> dict:
            calls.append(attempt)
            if attempt < 2:
                raise TransientTaskError("flaky")
            return {"value": attempt}

        outcome = guard.run(body)
        assert outcome.ok
        assert outcome.retries == 2
        assert calls == [0, 1, 2]

    def test_backoff_schedule_is_deterministic(self):
        guard, sleeps = make_guard(retries=3, backoff_base=0.05)

        def body(attempt: int) -> dict:
            if attempt < 3:
                raise TransientTaskError("flaky")
            return {}

        assert guard.run(body).ok
        assert sleeps == [0.05, 0.1, 0.2]

    def test_budget_exhausted_is_transient_failure(self):
        guard, sleeps = make_guard(retries=2)

        def body(attempt: int) -> dict:
            raise TransientTaskError("still flaky")

        outcome = guard.run(body)
        assert not outcome.ok
        assert outcome.failure.transient
        assert outcome.failure.error_class == "TransientTaskError"
        assert outcome.retries == 2
        assert len(sleeps) == 2

    def test_zero_retries_never_sleeps(self):
        guard, sleeps = make_guard(retries=0)

        def body(attempt: int) -> dict:
            raise TransientTaskError("flaky")

        outcome = guard.run(body)
        assert not outcome.ok
        assert sleeps == []


class TestPermanentFailure:
    def test_exception_becomes_failure(self):
        guard, sleeps = make_guard()

        def body(attempt: int) -> dict:
            raise RunnerError("bad cell")

        outcome = guard.run(body)
        assert not outcome.ok
        assert not outcome.failure.transient
        assert outcome.failure.error_class == "RunnerError"
        assert outcome.failure.message == "bad cell"
        assert outcome.failure.key == "t:1"
        assert sleeps == []

    def test_timeout_raised_by_body_not_retried(self):
        guard, sleeps = make_guard()

        def body(attempt: int) -> dict:
            raise TaskTimeout("too slow")

        outcome = guard.run(body)
        assert not outcome.ok
        assert outcome.failure.error_class == "TaskTimeout"
        assert sleeps == []

    def test_failure_record_shape(self):
        guard, _ = make_guard()
        outcome = guard.run(
            lambda attempt: (_ for _ in ()).throw(ValueError("nan"))
        )
        record = outcome.failure.to_record()
        assert record["type"] == "task"
        assert record["status"] == "failed"
        assert record["error"] == "ValueError"
        assert record["transient"] is False


class TestDeadline:
    def test_overrunning_result_is_discarded(self):
        guard, _ = make_guard(deadline=0.0)
        outcome = guard.run(lambda attempt: {"value": 1})
        assert not outcome.ok
        assert outcome.value is None
        assert outcome.failure.error_class == "TaskTimeout"
        assert "soft deadline" in outcome.failure.message

    def test_generous_deadline_passes(self):
        guard, _ = make_guard(deadline=3600.0)
        assert guard.run(lambda attempt: {"value": 1}).ok


class TestNullSleep:
    def test_returns_immediately(self):
        start = time.monotonic()
        null_sleep(60.0)
        assert time.monotonic() - start < 1.0

    def test_schedule_and_retries_unchanged(self):
        """Skipping the wait must not change what is *recorded*: the
        retry count matches a real-sleeper guard's."""
        guard = TaskGuard(
            "t:1", retries=2, backoff_base=0.05, sleep=null_sleep
        )

        def body(attempt: int) -> dict:
            raise TransientTaskError("still flaky")

        outcome = guard.run(body)
        assert not outcome.ok
        assert outcome.retries == 2

    def test_default_sleep_is_real(self):
        guard = TaskGuard("t:1")
        assert guard._sleep is time.sleep


class TestBaseExceptionPassthrough:
    def test_keyboard_interrupt_escapes(self):
        guard, _ = make_guard()

        def body(attempt: int) -> dict:
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            guard.run(body)

    def test_simulated_kill_escapes(self):
        guard, _ = make_guard()

        def body(attempt: int) -> dict:
            raise SimulatedKill("power loss")

        with pytest.raises(SimulatedKill):
            guard.run(body)
