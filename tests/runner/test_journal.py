"""Checkpoint journal: durable appends, torn-tail-tolerant replay."""

import json

import pytest

from repro.errors import RunnerError
from repro.runner import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointJournal,
    load_journal,
)


def header() -> dict:
    return {
        "type": "batch",
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "command": "test",
        "grid": "abc123",
        "tasks": 2,
    }


def ok(key: str, value: int = 0) -> dict:
    return {
        "type": "task",
        "key": key,
        "status": "ok",
        "payload": {"value": value},
    }


def failed(key: str) -> dict:
    return {
        "type": "task",
        "key": key,
        "status": "failed",
        "error": "RunnerError",
        "message": "boom",
        "transient": False,
    }


class TestAppend:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointJournal(path) as journal:
            journal.append(header())
            journal.append(ok("t:1"))
        state = load_journal(path)
        assert state.header["grid"] == "abc123"
        assert [e["key"] for e in state.entries] == ["t:1"]
        assert not state.truncated

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        CheckpointJournal(path)
        assert not path.exists()

    def test_every_record_is_one_line(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointJournal(path) as journal:
            journal.append(header())
            journal.append(ok("t:1"))
            journal.append(ok("t:2"))
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line) for line in lines)

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointJournal(path) as journal:
            journal.append(header())
        with CheckpointJournal(path) as journal:
            journal.append(ok("t:1"))
        state = load_journal(path)
        assert state.header is not None
        assert len(state.entries) == 1

    def test_append_after_close_raises(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "checkpoint.jsonl")
        journal.close()
        with pytest.raises(RunnerError):
            journal.append(header())


class TestReplay:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(RunnerError):
            load_journal(tmp_path / "absent.jsonl")

    def test_completed_last_wins(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointJournal(path) as journal:
            journal.append(header())
            journal.append(ok("t:1", value=1))
            journal.append(ok("t:1", value=2))
        done = load_journal(path).completed()
        assert done["t:1"]["payload"] == {"value": 2}

    def test_failed_excludes_later_completed(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointJournal(path) as journal:
            journal.append(header())
            journal.append(failed("t:1"))
            journal.append(failed("t:2"))
            journal.append(ok("t:1"))
        state = load_journal(path)
        assert set(state.failed()) == {"t:2"}
        assert set(state.completed()) == {"t:1"}

    def test_torn_tail_without_newline_dropped(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointJournal(path) as journal:
            journal.append(header())
            journal.append(ok("t:1"))
        with path.open("a") as handle:
            handle.write('{"type": "task", "key": "t:2", "sta')
        state = load_journal(path)
        assert state.truncated
        assert [e["key"] for e in state.entries] == ["t:1"]

    def test_torn_tail_with_newline_dropped(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointJournal(path) as journal:
            journal.append(header())
            journal.append(ok("t:1"))
        with path.open("a") as handle:
            handle.write('{"type": "task", "key"\n')
        state = load_journal(path)
        assert state.truncated
        assert [e["key"] for e in state.entries] == ["t:1"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        lines = [
            json.dumps(header()),
            "{definitely not json",
            json.dumps(ok("t:1")),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RunnerError, match="corrupt"):
            load_journal(path)

    def test_non_object_record_raises(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        path.write_text(json.dumps(header()) + "\n[1, 2]\n" + json.dumps(ok("t:1")) + "\n")
        with pytest.raises(RunnerError, match="not an"):
            load_journal(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        path.write_text(
            json.dumps(header()) + "\n\n" + json.dumps(ok("t:1")) + "\n"
        )
        state = load_journal(path)
        assert len(state.entries) == 1
        assert not state.truncated
