"""Parallel batch execution over the fork pool.

The contract under test: ``workers=N`` produces a report (and journal,
and failure table) byte-identical to a serial run of the same grid,
the parent stays the single writer of journal and artifacts, worker
deaths surface under their original exception type with every
already-merged task durable, and worker metric shards fold into the
parent's registry so manifests reconcile.
"""

import json
import os

import pytest

from repro import obs
from repro.errors import RunnerError
from repro.obs import runtime as obs_runtime
from repro.runner import (
    Batch,
    BatchRunner,
    FaultPlan,
    Injection,
    SimulatedKill,
    TaskSpec,
    load_journal,
)

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"),
    reason="the pool backend requires the fork start method",
)


def make_batch(n: int = 5, grid: str = "grid-a") -> Batch:
    tasks = []
    for index in range(1, n + 1):
        def body(env, index=index):
            obs.inc("demo.calls")
            return {"value": index * 10}

        tasks.append(
            TaskSpec(
                key=f"t:{index}",
                kind="unit",
                run=body,
                artifact=f"t{index}.json",
            )
        )

    def render(results):
        if not results:
            return "empty"
        return "\n".join(
            f"{key}={results[key]['value']}" for key in sorted(results)
        )

    return Batch(
        command="test",
        grid_id=grid,
        tasks=tuple(tasks),
        render=render,
        metadata={"n": n},
    )


def runner(batch: Batch, directory, **kwargs) -> BatchRunner:
    kwargs.setdefault("sleep", lambda seconds: None)
    return BatchRunner(batch, directory, **kwargs)


@pytest.fixture
def fresh_obs():
    """A private enabled observability state, restored afterwards."""
    previous = obs_runtime.current()
    state = obs_runtime.enable()
    try:
        yield state
    finally:
        obs_runtime.restore(previous)


class TestPoolParity:
    def test_report_byte_identical_to_serial(self, tmp_path):
        serial = runner(make_batch(), tmp_path / "ref").run()
        parallel = runner(
            make_batch(), tmp_path / "ck", workers=2
        ).run()
        assert parallel.ok
        assert parallel.report == serial.report
        assert parallel.executed == serial.executed == 5

    def test_artifacts_identical_to_serial(self, tmp_path):
        runner(make_batch(), tmp_path / "ref").run()
        runner(make_batch(), tmp_path / "ck", workers=3).run()
        for index in range(1, 6):
            name = f"t{index}.json"
            assert (tmp_path / "ck" / name).read_bytes() == (
                tmp_path / "ref" / name
            ).read_bytes()

    def test_journal_in_batch_order_with_worker_ids(self, tmp_path):
        runner(make_batch(), tmp_path, workers=3).run()
        state = load_journal(tmp_path / "checkpoint.jsonl")
        entries = state.completed()
        assert list(entries) == [f"t:{i}" for i in range(1, 6)]
        workers = {entry["worker"] for entry in entries.values()}
        assert all(
            isinstance(worker, int) and worker >= 0
            for worker in workers
        )
        # Worker ids are densely renumbered in first-contribution
        # order, so id 0 always exists regardless of OS pids.
        assert 0 in workers

    def test_more_workers_than_tasks(self, tmp_path):
        outcome = runner(
            make_batch(n=2), tmp_path, workers=8
        ).run()
        assert outcome.ok
        assert outcome.executed == 2

    def test_workers_zero_rejected(self, tmp_path):
        with pytest.raises(RunnerError, match="--workers"):
            BatchRunner(make_batch(), tmp_path, workers=0)

    def test_resume_serial_checkpoint_in_parallel(self, tmp_path):
        reference = runner(make_batch(), tmp_path / "ref").run()
        plan = FaultPlan([Injection(task="t:3", error="kill")])
        with pytest.raises(SimulatedKill):
            runner(make_batch(), tmp_path / "ck", plan=plan).run()
        resumed = runner(
            make_batch(), tmp_path / "ck", resume=True, workers=2
        ).run()
        assert resumed.cached == 2
        assert resumed.executed == 3
        assert resumed.report == reference.report


class TestPoolFaults:
    def test_kill_in_worker_reraised_with_durable_prefix(
        self, tmp_path
    ):
        plan = FaultPlan([Injection(task="t:3", error="kill")])
        with pytest.raises(SimulatedKill):
            runner(
                make_batch(), tmp_path, plan=plan, workers=2
            ).run()
        # Results are merged in batch order, so everything before the
        # killed task is journaled; nothing after it is.
        state = load_journal(tmp_path / "checkpoint.jsonl")
        assert set(state.completed()) == {"t:1", "t:2"}

    def test_kill_then_resume_byte_identical(self, tmp_path):
        reference = runner(
            make_batch(), tmp_path / "ref", workers=2
        ).run()
        plan = FaultPlan([Injection(task="t:3", error="kill")])
        with pytest.raises(SimulatedKill):
            runner(
                make_batch(), tmp_path / "ck", plan=plan, workers=2
            ).run()
        resumed = runner(
            make_batch(), tmp_path / "ck", resume=True, workers=2
        ).run()
        assert resumed.cached == 2
        assert resumed.executed == 3
        assert resumed.report == reference.report

    def test_interrupt_in_worker_propagates(self, tmp_path):
        plan = FaultPlan([Injection(task="t:4", error="interrupt")])
        with pytest.raises(KeyboardInterrupt):
            runner(
                make_batch(), tmp_path, plan=plan, workers=2
            ).run()
        state = load_journal(tmp_path / "checkpoint.jsonl")
        assert set(state.completed()) == {"t:1", "t:2", "t:3"}

    def test_transient_retry_in_worker_is_journaled(self, tmp_path):
        plan = FaultPlan([Injection(task="t:2", error="transient")])
        outcome = runner(
            make_batch(), tmp_path, plan=plan, workers=2
        ).run()
        assert outcome.ok
        state = load_journal(tmp_path / "checkpoint.jsonl")
        assert state.completed()["t:2"]["retries"] == 1

    def test_permanent_fault_report_matches_serial(self, tmp_path):
        plan = [Injection(task="t:2", error="permanent", message="bad")]
        serial = runner(
            make_batch(), tmp_path / "ref", plan=FaultPlan(plan)
        ).run()
        parallel = runner(
            make_batch(),
            tmp_path / "ck",
            plan=FaultPlan(plan),
            workers=3,
        ).run()
        assert parallel.exit_code == 1
        assert parallel.report == serial.report
        (failure,) = parallel.failures
        assert failure.key == "t:2"
        assert not failure.transient

    def test_artifact_fault_fires_in_parent(self, tmp_path):
        plan = FaultPlan(
            [Injection(task="t:1", point="artifact", error="transient")]
        )
        outcome = runner(
            make_batch(), tmp_path, plan=plan, workers=2
        ).run()
        assert outcome.ok
        # Artifact writes happen parent-side, so the parent's plan copy
        # (not a worker's) must have fired the injection.
        assert plan.exhausted
        state = load_journal(tmp_path / "checkpoint.jsonl")
        assert state.completed()["t:1"]["retries"] == 1
        payload = json.loads((tmp_path / "t1.json").read_text())
        assert payload == {"value": 10}

    def test_kill_during_artifact_write_leaves_no_partial(
        self, tmp_path
    ):
        plan = FaultPlan(
            [Injection(task="t:1", point="artifact", error="kill")]
        )
        with pytest.raises(SimulatedKill):
            runner(
                make_batch(), tmp_path, plan=plan, workers=2
            ).run()
        assert not (tmp_path / "t1.json").exists()
        assert not list(tmp_path.glob("*.tmp"))
        state = load_journal(tmp_path / "checkpoint.jsonl")
        assert state.completed() == {}

    def test_max_failures_aborts_with_pending(self, tmp_path):
        plan = FaultPlan([Injection(task="t:1", error="permanent")])
        outcome = runner(
            make_batch(),
            tmp_path,
            plan=plan,
            max_failures=0,
            workers=2,
        ).run()
        assert outcome.exit_code == 1
        assert outcome.pending == ("t:2", "t:3", "t:4", "t:5")
        assert "not attempted" in outcome.report


class TestWorkerMetrics:
    def test_shards_merge_into_parent_registry(
        self, tmp_path, fresh_obs
    ):
        runner(make_batch(), tmp_path, workers=2).run()
        snapshot = fresh_obs.registry.snapshot()
        # One shard merge per pool-executed task...
        assert snapshot["runner.worker.tasks"]["value"] == 5
        # ...carrying the counters the task bodies bumped in-worker.
        assert snapshot["demo.calls"]["value"] == 5
        assert snapshot["runner.task.completed"]["value"] == 5

    def test_per_worker_counters_cover_all_tasks(
        self, tmp_path, fresh_obs
    ):
        runner(make_batch(), tmp_path, workers=2).run()
        snapshot = fresh_obs.registry.snapshot()
        per_worker = [
            entry["value"]
            for name, entry in snapshot.items()
            if name.startswith("runner.worker.")
            and name.endswith(".tasks")
            and name != "runner.worker.tasks"
        ]
        assert sum(per_worker) == 5

    def test_worker_phase_timings_recorded(self, tmp_path, fresh_obs):
        runner(make_batch(), tmp_path, workers=2).run()
        snapshot = fresh_obs.registry.snapshot()
        phase = snapshot["runner.worker.phase.runner.task.seconds"]
        assert phase["kind"] == "counter"
        assert phase["value"] >= 0

    def test_serial_run_has_no_worker_counters(
        self, tmp_path, fresh_obs
    ):
        runner(make_batch(), tmp_path).run()
        snapshot = fresh_obs.registry.snapshot()
        assert "runner.worker.tasks" not in snapshot
