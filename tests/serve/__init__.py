"""Tests for the HTTP placement service (``repro.serve``)."""
