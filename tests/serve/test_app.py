"""Unit tests for the transport-free service layer: payload parsing,
status mapping, upload dedupe and the thread-safe store."""

from __future__ import annotations

import threading

import pytest

from repro.cache.config import PAPER_CACHE
from repro.errors import (
    ReproError,
    ServiceError,
    StoreError,
    TaskTimeout,
)
from repro.serve import (
    HttpError,
    LockedStore,
    PlacementService,
    UnknownArtifact,
    error_payload,
    parse_place_payload,
    status_for,
    write_service_manifest,
)
from repro.store import artifact_digest, encode_trace
from repro.workloads.suite import by_name


@pytest.fixture(scope="module")
def tiny_trace():
    return by_name("m88ksim").scaled(0.02).trace("train")


@pytest.fixture(scope="module")
def trace_bytes(tiny_trace):
    return encode_trace(tiny_trace)


@pytest.fixture
def service(tmp_path):
    return PlacementService(LockedStore(tmp_path / "store"))


class TestParsePlacePayload:
    def test_defaults(self):
        spec = parse_place_payload({"trace": "abc"})
        assert spec.trace_digest == "abc"
        assert spec.algorithm == "gbsc"
        assert spec.config == PAPER_CACHE
        assert spec.deadline is None

    def test_server_default_deadline_applies(self):
        spec = parse_place_payload({"trace": "abc"}, default_deadline=5)
        assert spec.deadline == 5.0

    def test_request_deadline_wins(self):
        spec = parse_place_payload(
            {"trace": "abc", "deadline": 2}, default_deadline=5
        )
        assert spec.deadline == 2.0

    def test_cache_overrides(self):
        spec = parse_place_payload(
            {"trace": "abc", "cache": {"size": 4096, "associativity": 2}}
        )
        assert spec.config.size == 4096
        assert spec.config.associativity == 2
        assert spec.config.line_size == PAPER_CACHE.line_size

    @pytest.mark.parametrize(
        "payload",
        [
            "not a mapping",
            {},
            {"trace": 7},
            {"trace": ""},
            {"trace": "abc", "surprise": 1},
            {"trace": "abc", "algorithm": "nope"},
            {"trace": "abc", "deadline": "soon"},
            {"trace": "abc", "deadline": True},
            {"trace": "abc", "cache": {"size": "big"}},
            {"trace": "abc", "cache": {"sets": 4}},
        ],
    )
    def test_rejected_shapes(self, payload):
        with pytest.raises(ServiceError):
            parse_place_payload(payload)


class TestStatusMapping:
    @pytest.mark.parametrize(
        ("error", "status"),
        [
            (HttpError(405, "method"), 405),
            (HttpError(413, "too big"), 413),
            (UnknownArtifact("gone"), 404),
            (TaskTimeout("overran"), 504),
            (StoreError("backend"), 500),
            (ServiceError("bad shape"), 400),
            (ReproError("generic"), 400),
            (ValueError("a bug"), 500),
        ],
    )
    def test_status_for(self, error, status):
        assert status_for(error) == status

    def test_error_payload_envelope(self):
        payload = error_payload(404, UnknownArtifact("gone"))
        assert payload == {
            "error": {
                "status": 404,
                "type": "UnknownArtifact",
                "message": "gone",
            }
        }


class TestUpload:
    def test_empty_body_rejected(self, service):
        with pytest.raises(ServiceError):
            service.upload_trace(b"")

    def test_upload_then_dedupe(self, service, trace_bytes, tiny_trace):
        first = service.upload_trace(trace_bytes)
        assert first["deduped"] is False
        assert first["stored"] is True
        assert first["events"] == len(tiny_trace)
        assert first["procedures"] == len(tiny_trace.program)
        second = service.upload_trace(trace_bytes)
        assert second["digest"] == first["digest"]
        assert second["deduped"] is True
        snapshot = service.snapshot()
        assert snapshot["serve.uploads"]["value"] == 2
        assert snapshot["serve.uploads.deduped"]["value"] == 1

    def test_recompression_still_dedupes(self, service, tiny_trace):
        """The digest is content-addressed, so a re-encoded container
        with identical trace content lands on the same entry."""
        first = service.upload_trace(encode_trace(tiny_trace))
        second = service.upload_trace(encode_trace(tiny_trace))
        assert second["digest"] == first["digest"]
        assert second["deduped"] is True


class TestPlace:
    def test_unknown_digest_raises(self, service):
        with pytest.raises(UnknownArtifact):
            service.place({"trace": "f" * 64})

    def test_place_counts_per_algorithm(self, service, trace_bytes):
        digest = service.upload_trace(trace_bytes)["digest"]
        response = service.place(
            {"trace": digest, "algorithm": "default"}
        )
        assert response["algorithm"] == "default"
        assert response["layout"]["format"] == "repro/layout"
        assert response["train"]["fetches"] > 0
        snapshot = service.snapshot()
        assert snapshot["serve.layouts"]["value"] == 1
        assert snapshot["serve.layouts.default"]["value"] == 1


class TestHealthAndMetrics:
    def test_healthz(self, service):
        body = service.healthz()
        assert body["status"] == "ok"
        assert body["store"]["writable"] is True

    def test_hit_rate_is_a_first_class_gauge(self, service, trace_bytes):
        body = service.metrics()
        assert body["metrics"]["store.hit_rate"]["value"] == 0.0
        digest = service.upload_trace(trace_bytes)["digest"]
        service.place({"trace": digest, "algorithm": "default"})
        service.place({"trace": digest, "algorithm": "default"})
        warm = service.metrics()
        assert warm["metrics"]["store.hit_rate"]["value"] > 0.0
        assert warm["metrics"]["store.entries"]["value"] >= 1

    def test_record_request_instruments(self, service):
        service.record_request("healthz", 200, 0.002)
        service.record_request("layouts", 504, 1.5)
        snapshot = service.snapshot()
        assert snapshot["serve.requests"]["value"] == 2
        assert snapshot["serve.requests.healthz"]["value"] == 1
        assert snapshot["serve.status.504"]["value"] == 1
        assert snapshot["serve.errors"]["value"] == 1
        assert snapshot["serve.latency_seconds"]["count"] == 2

    def test_manifest_reconciles_with_snapshot(self, service, tmp_path):
        service.record_request("healthz", 200, 0.001)
        service.record_request("metrics", 200, 0.001)
        out = tmp_path / "serve.jsonl"
        manifest = write_service_manifest(service, metrics_out=str(out))
        assert out.exists()
        metrics = manifest["metrics"]
        assert metrics["serve.requests"]["value"] == 2
        assert metrics["store.hit_rate"]["value"] == 0.0


class TestLockedStore:
    def test_concurrent_puts_all_land(self, tmp_path):
        store = LockedStore(tmp_path / "store")
        errors: list[BaseException] = []

        def put_one(index: int) -> None:
            key = {"uploaded": f"thread-{index}"}
            digest = artifact_digest("trace", key)
            try:
                assert store.put(digest, "trace", b"x" * index, key=key)
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=put_one, args=(index,))
            for index in range(1, 17)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.stats()["entries"] == 16
