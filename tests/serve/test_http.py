"""End-to-end tests over a real socket: an ephemeral-port
``ThreadingHTTPServer`` driven with ``urllib``/``http.client``."""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.io import save_trace
from repro.serve import (
    LockedStore,
    PlacementService,
    make_server,
    write_service_manifest,
)
from repro.store import encode_trace
from repro.workloads.suite import by_name


@pytest.fixture(scope="module")
def tiny_trace():
    return by_name("m88ksim").scaled(0.02).trace("train")


@pytest.fixture(scope="module")
def trace_bytes(tiny_trace):
    return encode_trace(tiny_trace)


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory, tiny_trace):
    path = tmp_path_factory.mktemp("serve") / "train.npz"
    save_trace(tiny_trace, path)
    return path


@pytest.fixture
def served(tmp_path):
    """A live server on an ephemeral port; yields (base_url, app)."""
    app = PlacementService(LockedStore(tmp_path / "store"))
    server = make_server("127.0.0.1", 0, app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", app
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def request(url, method="GET", data=None):
    """(status, decoded JSON body) for one exchange; never raises on
    HTTP error statuses."""
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def place(base, payload):
    return request(
        f"{base}/layouts",
        method="POST",
        data=json.dumps(payload).encode(),
    )


def wait_for_requests(app, count, tries=500):
    """Block until *count* requests are recorded.  A request is counted
    *after* its response is written, so a client can observe the
    response before the counter moves; tests synchronise here."""
    for _ in range(tries):
        snapshot = app.snapshot()
        recorded = snapshot.get("serve.requests", {}).get("value", 0)
        if recorded >= count:
            return recorded
        time.sleep(0.01)
    raise AssertionError(f"never saw {count} recorded requests")


class TestEndpoints:
    def test_healthz(self, served):
        base, _ = served
        status, body = request(f"{base}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["store"]["writable"] is True

    def test_upload_place_dedupe_flow(self, served, trace_bytes):
        base, _ = served
        status, first = request(
            f"{base}/traces", method="POST", data=trace_bytes
        )
        assert status == 200
        assert first["deduped"] is False

        status, layout = place(
            base, {"trace": first["digest"], "algorithm": "gbsc"}
        )
        assert status == 200
        assert layout["algorithm"] == "GBSC"
        assert layout["layout"]["format"] == "repro/layout"
        assert 0.0 <= layout["train"]["miss_rate"] <= 1.0

        status, again = request(
            f"{base}/traces", method="POST", data=trace_bytes
        )
        assert status == 200
        assert again["digest"] == first["digest"]
        assert again["deduped"] is True

        status, metrics = request(f"{base}/metrics")
        assert status == 200
        assert metrics["metrics"]["serve.uploads.deduped"]["value"] == 1

    def test_layout_matches_cli_place(
        self, served, trace_bytes, trace_file, tmp_path
    ):
        """The acceptance contract: a layout served over HTTP is the
        same document ``repro-layout place`` writes for that trace."""
        base, _ = served
        _, uploaded = request(
            f"{base}/traces", method="POST", data=trace_bytes
        )
        _, served_layout = place(base, {"trace": uploaded["digest"]})

        cli_out = tmp_path / "cli.json"
        assert (
            main(
                [
                    "place",
                    str(trace_file),
                    "--algorithm",
                    "gbsc",
                    "-o",
                    str(cli_out),
                ]
            )
            == 0
        )
        assert served_layout["layout"] == json.loads(
            cli_out.read_text()
        )

    def test_concurrent_uploads_and_places(
        self, served, trace_bytes, trace_file, tmp_path
    ):
        """Concurrent clients all get full answers and identical
        layouts; the shared store survives the write contention."""
        base, app = served
        _, uploaded = request(
            f"{base}/traces", method="POST", data=trace_bytes
        )
        digest = uploaded["digest"]
        results: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def upload_worker() -> None:
            outcome = request(
                f"{base}/traces", method="POST", data=trace_bytes
            )
            with lock:
                results.append(outcome)

        def place_worker() -> None:
            outcome = place(base, {"trace": digest, "algorithm": "gbsc"})
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=upload_worker) for _ in range(3)]
        threads += [threading.Thread(target=place_worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(results) == 6
        assert all(status == 200 for status, _ in results)

        layouts = [
            body["layout"] for _, body in results if "layout" in body
        ]
        assert len(layouts) == 3
        cli_out = tmp_path / "cli.json"
        assert (
            main(["place", str(trace_file), "-o", str(cli_out)]) == 0
        )
        expected = json.loads(cli_out.read_text())
        assert all(layout == expected for layout in layouts)
        assert all(
            body["deduped"] for _, body in results if "deduped" in body
        )


class TestErrorStatuses:
    def test_deadline_overrun_is_504(self, served, trace_bytes):
        base, _ = served
        _, uploaded = request(
            f"{base}/traces", method="POST", data=trace_bytes
        )
        status, body = place(
            base, {"trace": uploaded["digest"], "deadline": 1e-9}
        )
        assert status == 504
        assert body["error"]["type"] == "TaskTimeout"

    def test_malformed_json_is_400(self, served):
        base, _ = served
        status, body = request(
            f"{base}/layouts", method="POST", data=b"{not json"
        )
        assert status == 400
        assert "JSON" in body["error"]["message"]

    def test_unknown_request_key_is_400(self, served):
        base, _ = served
        status, body = place(base, {"trace": "abc", "surprise": 1})
        assert status == 400
        assert body["error"]["type"] == "ServiceError"

    def test_unknown_digest_is_404(self, served):
        base, _ = served
        status, body = place(base, {"trace": "f" * 64})
        assert status == 404
        assert body["error"]["type"] == "UnknownArtifact"

    def test_wrong_method_is_405(self, served):
        base, _ = served
        status, body = request(
            f"{base}/healthz", method="POST", data=b"{}"
        )
        assert status == 405

    def test_unknown_path_is_404(self, served):
        base, _ = served
        status, body = request(f"{base}/nope")
        assert status == 404
        assert body["error"]["type"] == "HttpError"

    def test_missing_content_length_is_411(self, served):
        base, _ = served
        host, port = base.removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            connection.putrequest(
                "POST", "/traces", skip_accept_encoding=True
            )
            connection.endheaders()
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 411
            assert "Content-Length" in body["error"]["message"]
        finally:
            connection.close()


class TestMetricsReconcile:
    def test_manifest_matches_request_count(
        self, served, trace_bytes, tmp_path
    ):
        """The shutdown manifest's counters cover every request made,
        including the final ``/metrics`` scrape (which is recorded
        *after* its own response is written)."""
        base, app = served
        _, uploaded = request(
            f"{base}/traces", method="POST", data=trace_bytes
        )
        request(f"{base}/healthz")
        place(base, {"trace": uploaded["digest"], "algorithm": "default"})
        wait_for_requests(app, 3)
        status, scraped = request(f"{base}/metrics")
        assert status == 200
        # The scrape itself is the 4th request but is counted after
        # responding, so its own body reports the three before it.
        assert scraped["metrics"]["serve.requests"]["value"] == 3
        wait_for_requests(app, 4)

        out = tmp_path / "serve.jsonl"
        manifest = write_service_manifest(app, metrics_out=str(out))
        metrics = manifest["metrics"]
        assert metrics["serve.requests"]["value"] == 4
        assert metrics["serve.requests.traces"]["value"] == 1
        assert metrics["serve.requests.healthz"]["value"] == 1
        assert metrics["serve.requests.layouts"]["value"] == 1
        assert metrics["serve.requests.metrics"]["value"] == 1
        assert metrics["serve.uploads"]["value"] == 1
        assert metrics["serve.layouts.default"]["value"] == 1
        assert metrics["serve.latency_seconds"]["count"] == 4
        assert metrics["serve.status.200"]["value"] == 4

        audit = main(["check", str(out)])
        assert audit == 0
