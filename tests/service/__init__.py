"""Tests for the library-level placement API (``repro.service``)."""
