"""The library-level placement API: golden parity with the CLI path,
deadline behaviour and request validation."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ServiceError, TaskTimeout
from repro.io import save_layout, save_trace
from repro.service import (
    ALGORITHMS,
    CompareRequest,
    PlacementRequest,
    make_algorithm,
    run_compare,
    run_placement,
)
from repro.workloads.suite import by_name


@pytest.fixture(scope="module")
def tiny_workload():
    return by_name("m88ksim").scaled(0.02)


@pytest.fixture(scope="module")
def train_trace(tiny_workload):
    return tiny_workload.trace("train")


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory, train_trace):
    path = tmp_path_factory.mktemp("service") / "train.npz"
    save_trace(train_trace, path)
    return path


class TestGoldenParity:
    def test_layout_byte_identical_to_cli_place(self, tmp_path, trace_file):
        """``run_placement`` and ``repro-layout place`` write the same
        bytes for the same trace (the service-extraction contract)."""
        cli_out = tmp_path / "cli.json"
        assert (
            main(
                [
                    "place",
                    str(trace_file),
                    "--algorithm",
                    "gbsc",
                    "-o",
                    str(cli_out),
                ]
            )
            == 0
        )
        result = run_placement(
            PlacementRequest(trace_path=trace_file, algorithm="gbsc")
        )
        api_out = tmp_path / "api.json"
        save_layout(result.layout, api_out)
        assert api_out.read_bytes() == cli_out.read_bytes()

    def test_trace_sources_are_equivalent(self, trace_file, train_trace):
        by_path = run_placement(
            PlacementRequest(trace_path=trace_file, algorithm="default")
        )
        in_memory = run_placement(
            PlacementRequest(trace=train_trace, algorithm="default")
        )
        assert dict(by_path.layout.items()) == dict(
            in_memory.layout.items()
        )

    def test_result_fields(self, train_trace):
        result = run_placement(
            PlacementRequest(trace=train_trace, algorithm="gbsc")
        )
        assert result.algorithm == "GBSC"
        assert len(result.layout.program) == len(train_trace.program)
        assert 0.0 <= result.train_stats.miss_rate <= 1.0
        assert result.train_stats.fetches > 0
        assert result.elapsed >= 0.0


class TestDeadline:
    def test_overrun_raises_task_timeout(self, train_trace):
        with pytest.raises(TaskTimeout):
            run_placement(
                PlacementRequest(
                    trace=train_trace,
                    algorithm="default",
                    deadline=1e-9,
                )
            )

    def test_generous_deadline_passes(self, train_trace):
        result = run_placement(
            PlacementRequest(
                trace=train_trace, algorithm="default", deadline=3600.0
            )
        )
        assert result.train_stats.fetches > 0

    def test_pipeline_errors_win_over_the_deadline(self, tmp_path):
        """A failing attempt re-raises its own error, never a timeout."""
        with pytest.raises(Exception) as excinfo:
            run_placement(
                PlacementRequest(
                    trace_path=tmp_path / "absent.npz",
                    algorithm="default",
                    deadline=1e-9,
                )
            )
        assert not isinstance(excinfo.value, TaskTimeout)


class TestValidation:
    def test_no_trace_source(self):
        with pytest.raises(ServiceError):
            run_placement(PlacementRequest())

    def test_two_trace_sources(self, train_trace):
        with pytest.raises(ServiceError):
            run_placement(
                PlacementRequest(trace=train_trace, workload="perl")
            )

    def test_unknown_algorithm(self, train_trace):
        with pytest.raises(ServiceError):
            run_placement(
                PlacementRequest(trace=train_trace, algorithm="nope")
            )

    def test_bad_which(self, train_trace):
        with pytest.raises(ServiceError):
            run_placement(
                PlacementRequest(workload="perl", which="validation")
            )

    def test_non_positive_deadline(self, train_trace):
        with pytest.raises(ServiceError):
            run_placement(
                PlacementRequest(trace=train_trace, deadline=0)
            )

    def test_boolean_deadline(self, train_trace):
        with pytest.raises(ServiceError):
            run_placement(
                PlacementRequest(trace=train_trace, deadline=True)
            )

    def test_bad_trg_method(self, train_trace):
        with pytest.raises(ServiceError):
            run_placement(
                PlacementRequest(trace=train_trace, trg_method="magic")
            )

    def test_make_algorithm_rejects_unknown(self):
        with pytest.raises(ServiceError):
            make_algorithm("nope")

    def test_registry_instantiates(self):
        for name in ALGORITHMS:
            assert make_algorithm(name).name


class TestCompare:
    def test_echo_lines_match_cli_stdout(
        self, tiny_workload, capsys, monkeypatch
    ):
        """``repro-layout compare`` output is exactly the run_compare
        echo stream — the CLI is a thin frontend."""
        from repro import cli

        monkeypatch.setattr(cli, "by_name", lambda _n: tiny_workload)
        assert main(["compare", "m88ksim"]) == 0
        cli_lines = capsys.readouterr().out.splitlines()

        echoed: list[str] = []
        results = run_compare(
            CompareRequest(workload=tiny_workload), echo=echoed.append
        )
        assert echoed == cli_lines
        assert [name for name, _ in results]
        for _, stats in results:
            assert 0.0 <= stats.miss_rate <= 1.0

    def test_negative_runs_rejected(self, tiny_workload):
        with pytest.raises(ServiceError):
            run_compare(CompareRequest(workload=tiny_workload, runs=-1))
