"""Shared fixtures for the artifact-store tests."""

from __future__ import annotations

import pytest

from repro.workloads.spec import clear_trace_memo


@pytest.fixture
def tiny_workload(monkeypatch):
    """A 2%-scale m88ksim analog, routed through CLI lookups too."""
    from repro import cli
    from repro.workloads import suite as suite_module

    tiny = suite_module.by_name("m88ksim").scaled(0.02)
    monkeypatch.setattr(cli, "by_name", lambda _n: tiny)
    return tiny


@pytest.fixture(autouse=True)
def fresh_trace_memo():
    """Each test sees a cold in-process trace memo.

    The memo would otherwise satisfy trace requests before the
    persistent store gets a look, masking hits and misses.
    """
    clear_trace_memo()
    yield
    clear_trace_memo()
