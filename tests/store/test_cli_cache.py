"""The ``repro-layout cache {stats,gc,verify}`` maintenance commands."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.store import ArtifactStore, artifact_digest, blob_relpath


@pytest.fixture
def populated(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put(artifact_digest("wcg", {"trace": "a"}), "wcg", b"x" * 10)
    store.put(artifact_digest("trg", {"trace": "a"}), "trg", b"y" * 20)
    return store


class TestStats:
    def test_reports_totals_and_kinds(self, populated, capsys):
        assert main(["cache", "stats", str(populated.root)]) == 0
        out = capsys.readouterr().out
        assert "2 artifact(s)" in out
        assert "wcg" in out and "trg" in out

    def test_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["cache", "stats", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_fresh_handle_reports_no_accesses(self, populated, capsys):
        assert main(["cache", "stats", str(populated.root)]) == 0
        out = capsys.readouterr().out
        assert "session: 0 hit(s), 0 miss(es)" in out
        assert "hit rate n/a (no accesses)" in out


class TestVerify:
    def test_clean_store_exits_0(self, populated, capsys):
        assert main(["cache", "verify", str(populated.root)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_tampered_blob_exits_1_with_finding(self, populated, capsys):
        digest = artifact_digest("wcg", {"trace": "a"})
        blob = populated.blob_path(digest)
        blob.write_bytes(blob.read_bytes() + b"!")
        assert main(["cache", "verify", str(populated.root)]) == 1
        out = capsys.readouterr().out
        assert "cache/digest-mismatch" in out

    def test_missing_blob_exits_1(self, populated, capsys):
        populated.blob_path(
            artifact_digest("trg", {"trace": "a"})
        ).unlink()
        assert main(["cache", "verify", str(populated.root)]) == 1
        assert "cache/missing-blob" in capsys.readouterr().out


class TestGc:
    def test_removes_orphans(self, populated, capsys):
        orphan = populated.root / blob_relpath("ee" * 32)
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"stray")
        assert main(["cache", "gc", str(populated.root)]) == 0
        assert not orphan.exists()
        assert "removed" in capsys.readouterr().out

    def test_max_bytes_evicts(self, populated, capsys):
        assert (
            main(
                [
                    "cache",
                    "gc",
                    str(populated.root),
                    "--max-bytes",
                    "20",
                ]
            )
            == 0
        )
        store = ArtifactStore(populated.root)
        assert store.stats()["bytes"] <= 20


class TestCheckIntegration:
    def test_check_routes_store_directories(self, populated, capsys):
        """``repro-layout check`` applies the cache/* rules both to a
        store directory and to a run directory containing one."""
        assert main(["check", str(populated.root)]) == 0
        capsys.readouterr()

        run_dir = populated.root.parent
        digest = artifact_digest("wcg", {"trace": "a"})
        blob = populated.blob_path(digest)
        blob.write_bytes(blob.read_bytes() + b"!")
        assert main(["check", str(run_dir)]) == 1
        assert "cache/digest-mismatch" in capsys.readouterr().out
