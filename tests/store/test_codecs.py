"""Codec round trips: decode(encode(x)) == x, corrupt bytes raise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io import SerializationError
from repro.profiles.pairdb import PairDatabase, build_pair_database
from repro.profiles.trg import build_trgs, procedure_refs
from repro.profiles.wcg import build_wcg
from repro.program.procedure import ChunkId
from repro.store.codecs import (
    CODECS,
    decode_pair_db,
    decode_trace,
    decode_trgs,
    decode_wcg,
    encode_pair_db,
    encode_trace,
    encode_trgs,
    encode_wcg,
)


@pytest.fixture(scope="module")
def trace():
    from repro.workloads import suite as suite_module
    from repro.workloads.spec import clear_trace_memo

    clear_trace_memo()
    return suite_module.by_name("m88ksim").scaled(0.02).trace("train")


class TestTraceCodec:
    def test_round_trip(self, trace):
        restored = decode_trace(encode_trace(trace))
        assert restored.program == trace.program
        assert np.array_equal(restored.proc_indices, trace.proc_indices)
        assert np.array_equal(restored.extent_starts, trace.extent_starts)
        assert np.array_equal(
            restored.extent_lengths, trace.extent_lengths
        )

    def test_truncated_blob_raises(self, trace):
        data = encode_trace(trace)
        with pytest.raises(SerializationError):
            decode_trace(data[: len(data) // 2])

    def test_non_npz_blob_raises(self):
        with pytest.raises(SerializationError):
            decode_trace(b"not a zip file")


class TestGraphCodecs:
    def test_wcg_round_trip(self, trace):
        wcg = build_wcg(trace)
        assert decode_wcg(encode_wcg(wcg)) == wcg

    def test_trgs_round_trip(self, trace, paper_cache):
        pair = build_trgs(trace, paper_cache)
        restored = decode_trgs(encode_trgs(pair))
        assert restored.select == pair.select
        assert restored.place == pair.place
        assert restored.select_stats == pair.select_stats
        assert restored.place_stats == pair.place_stats
        assert restored.chunk_size == pair.chunk_size

    def test_wrong_format_raises(self, trace):
        wcg_bytes = encode_wcg(build_wcg(trace))
        with pytest.raises(SerializationError):
            decode_trgs(wcg_bytes)
        with pytest.raises(SerializationError):
            decode_wcg(b'{"format":"repro/store-wcg"}')


class TestPairDbCodec:
    def test_round_trip(self, trace, paper_cache):
        value = build_pair_database(
            procedure_refs(trace),
            trace.program.size_of,
            2 * paper_cache.size,
        )
        database, stats = value
        restored_db, restored_stats = decode_pair_db(
            encode_pair_db(value)
        )
        assert restored_stats == stats
        assert restored_db.blocks == database.blocks
        for block in database.blocks:
            assert restored_db.pairs_for(block) == database.pairs_for(
                block
            )

    def test_chunk_nodes_survive(self):
        """ChunkId nodes (set-associative runs) round-trip intact."""
        database = PairDatabase()
        a, b = ChunkId("f", 0), ChunkId("g", 1)
        database.record("p", [a, b])
        from repro.profiles.trg import TRGBuildStats

        stats = TRGBuildStats(
            refs_processed=3, avg_q_entries=1.0, evictions=0
        )
        restored, _ = decode_pair_db(encode_pair_db((database, stats)))
        assert restored.count("p", a, b) == 1

    def test_degenerate_single_member_pair(self):
        """A frozenset pair that collapsed to one member decodes back
        to the same count."""
        from repro.profiles.trg import TRGBuildStats

        database = PairDatabase()
        database.set_pair_count("p", "r", "r", 4)
        stats = TRGBuildStats(
            refs_processed=1, avg_q_entries=1.0, evictions=0
        )
        restored, _ = decode_pair_db(encode_pair_db((database, stats)))
        assert restored.count("p", "r", "r") == 4

    def test_deterministic_bytes(self, trace, paper_cache):
        """Identical databases encode to identical bytes — required
        for stable content hashes in the index."""
        value = build_pair_database(
            procedure_refs(trace),
            trace.program.size_of,
            2 * paper_cache.size,
        )
        assert encode_pair_db(value) == encode_pair_db(value)


class TestRegistry:
    def test_every_kind_has_a_codec_pair(self):
        assert set(CODECS) == {"trace", "wcg", "trg", "pairdb"}
        for encode, decode in CODECS.values():
            assert callable(encode) and callable(decode)
