"""Cache-key stability: same inputs → same digest, forever.

The store is only sound if fingerprints are deterministic across
processes and sessions, and only *useful* if every input that can
change an artifact also changes its digest.  The golden literals here
pin the canonical form: if one of these tests starts failing, the key
schema changed and every existing cache directory silently became
unreachable — bump the matching :data:`BUILDER_SALTS` entry instead.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.errors import StoreError
from repro.store.fingerprint import (
    BUILDER_SALTS,
    artifact_digest,
    builder_salt,
    callgraph_fingerprint,
    canonical_json,
    fingerprint,
    pairdb_key,
    trace_content_fingerprint,
    trace_key,
    trg_key,
    wcg_key,
)

GOLDEN_KEY = {
    "trace": "a" * 64,
    "cache": [8192, 32, 1],
    "chunk_size": 256,
    "popular": ["f", "g"],
    "q_multiplier": 2,
}
GOLDEN_DIGEST = (
    "06263ca65923fe7d5e54782e6d329d7199269f7c2a06a8866357a216f9d2d4d4"
)


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_compact_sorted_form(self):
        assert (
            canonical_json({"b": 1, "a": [1.5, None, True]})
            == '{"a":[1.5,null,true],"b":1}'
        )

    def test_nan_is_rejected(self):
        with pytest.raises(StoreError):
            canonical_json({"x": float("nan")})

    def test_unserialisable_payload_is_rejected(self):
        with pytest.raises(StoreError):
            canonical_json({"x": object()})


class TestArtifactDigest:
    def test_golden_digest(self):
        """The literal digest for a fixed key — pins the key schema."""
        assert artifact_digest("trg", GOLDEN_KEY) == GOLDEN_DIGEST

    def test_stable_across_processes(self):
        """A fresh interpreter computes the identical digest."""
        script = (
            "from repro.store.fingerprint import artifact_digest\n"
            f"key = {GOLDEN_KEY!r}\n"
            "print(artifact_digest('trg', key))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == GOLDEN_DIGEST

    def test_salt_bump_invalidates(self, monkeypatch):
        """Bumping a builder salt changes every digest of that kind."""
        before = artifact_digest("trg", GOLDEN_KEY)
        monkeypatch.setitem(BUILDER_SALTS, "trg", BUILDER_SALTS["trg"] + 1)
        assert artifact_digest("trg", GOLDEN_KEY) != before

    def test_kind_is_part_of_the_digest(self):
        assert artifact_digest("wcg", {"trace": "x"}) != artifact_digest(
            "pairdb", {"trace": "x"}
        )

    def test_unknown_kind_is_an_error(self):
        with pytest.raises(StoreError):
            builder_salt("layout")
        with pytest.raises(StoreError):
            artifact_digest("layout", {})


class TestKeyComponents:
    def test_wcg_key_depends_only_on_trace(self):
        assert wcg_key("abc") == {"trace": "abc"}

    def test_trg_key_sorts_popular(self, paper_cache):
        a = trg_key("t", paper_cache, 256, {"b", "a"}, 2)
        b = trg_key("t", paper_cache, 256, {"a", "b"}, 2)
        assert a == b
        assert a["popular"] == ["a", "b"]

    def test_trg_key_none_popular_is_distinct(self, paper_cache):
        assert trg_key("t", paper_cache, 256, None, 2) != trg_key(
            "t", paper_cache, 256, set(), 2
        )

    def test_pairdb_key_fields(self):
        key = pairdb_key("t", {"z", "y"}, 16384)
        assert key == {
            "trace": "t",
            "popular": ["y", "z"],
            "capacity": 16384,
        }

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda k: k.update(trace="b" * 64),
            lambda k: k.update(cache=[16384, 32, 1]),
            lambda k: k.update(chunk_size=128),
            lambda k: k.update(popular=["f"]),
            lambda k: k.update(q_multiplier=4),
        ],
    )
    def test_every_key_field_feeds_the_digest(self, mutate):
        key = dict(GOLDEN_KEY)
        mutate(key)
        assert artifact_digest("trg", key) != GOLDEN_DIGEST


class TestTraceFingerprints:
    def test_trace_key_reflects_graph_and_input(self, tiny_workload):
        graph = tiny_workload.call_graph()
        key = trace_key(graph, tiny_workload.train)
        assert set(key) == {"graph", "input"}
        assert key["graph"] == callgraph_fingerprint(graph)
        assert trace_key(graph, tiny_workload.test) != key

    def test_callgraph_fingerprint_is_deterministic(self, tiny_workload):
        graph = tiny_workload.call_graph()
        assert callgraph_fingerprint(graph) == callgraph_fingerprint(graph)

    def test_content_fingerprint_matches_equal_traces(self, tiny_workload):
        train = tiny_workload.trace("train")
        test = tiny_workload.trace("test")
        assert trace_content_fingerprint(
            train
        ) == trace_content_fingerprint(train)
        assert trace_content_fingerprint(
            train
        ) != trace_content_fingerprint(test)

    def test_fingerprint_of_non_dict_payloads(self):
        assert fingerprint([1, 2]) != fingerprint([2, 1])
