"""Byte-identity: cached runs must change nothing but the wall clock.

The cache is an optimisation layer only — the acceptance bar is that
``compare`` output is byte-identical cold (empty store), warm
(populated store, fresh process memo) and with caching disabled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.cache.config import CacheConfig
from repro.eval.experiment import build_context
from repro.io import graph_to_dict
from repro.store import ArtifactStore
from repro.workloads.spec import clear_trace_memo


class TestBuildContextParity:
    def test_cold_warm_disabled_agree(self, tiny_workload, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        config = CacheConfig(size=8192, line_size=32)
        trace = tiny_workload.trace("train")
        cold = build_context(trace, config, store=store)
        warm = build_context(trace, config, store=store)
        plain = build_context(trace, config)
        assert store.hits > 0 and store.misses > 0
        for context in (warm, plain):
            assert graph_to_dict(context.wcg) == graph_to_dict(cold.wcg)
            assert graph_to_dict(context.trgs.select) == graph_to_dict(
                cold.trgs.select
            )
            assert graph_to_dict(context.trgs.place) == graph_to_dict(
                cold.trgs.place
            )
            assert context.popular == cold.popular

    def test_stored_trace_round_trips(self, tiny_workload, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        generated = tiny_workload.trace("train", store=store)
        clear_trace_memo()
        restored = tiny_workload.trace("train", store=store)
        assert store.hits >= 1
        assert np.array_equal(
            restored.proc_indices, generated.proc_indices
        )
        assert np.array_equal(
            restored.extent_starts, generated.extent_starts
        )
        assert np.array_equal(
            restored.extent_lengths, generated.extent_lengths
        )


class TestCliParity:
    @pytest.fixture
    def run(self, tiny_workload, capsys):
        def invoke(*extra: str) -> str:
            clear_trace_memo()
            capsys.readouterr()
            assert (
                main(["compare", "m88ksim", "--fast", *extra]) == 0
            )
            return capsys.readouterr().out

        return invoke

    def test_compare_cold_warm_disabled(self, run, tmp_path):
        cache = str(tmp_path / "store")
        cold = run("--cache", cache)
        warm = run("--cache", cache)
        plain = run("--no-cache")
        assert cold == warm == plain
        assert "miss rate" in cold

    def test_no_cache_wins_over_cache(self, run, tmp_path):
        """``--no-cache`` disables the store even when ``--cache`` is
        also given — nothing is written."""
        cache = tmp_path / "store"
        run("--cache", str(cache), "--no-cache")
        assert not cache.exists()

    def test_checkpointed_run_shares_the_store(
        self, run, tiny_workload, tmp_path
    ):
        """Checkpointed batches sharing a store stay byte-identical
        cold, warm and resumed, and agree with the direct path on
        every miss-rate line (the two paths differ only in their
        progress headers)."""
        cache = str(tmp_path / "store")
        direct = run("--cache", cache)
        cold = run(
            "--cache", cache, "--checkpoint", str(tmp_path / "c1")
        )
        warm = run(
            "--cache", cache, "--checkpoint", str(tmp_path / "c2")
        )
        resumed = run(
            "--cache",
            cache,
            "--checkpoint",
            str(tmp_path / "c2"),
            "--resume",
        )
        assert cold == warm == resumed

        def rates(text: str) -> list[str]:
            return [l for l in text.splitlines() if "miss rate" in l]

        assert rates(direct) == rates(cold)
