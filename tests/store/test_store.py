"""ArtifactStore behaviour: round trips, corruption, gc, write gating."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreError
from repro.store import (
    ArtifactStore,
    INDEX_NAME,
    STORE_FORMAT,
    artifact_digest,
    blob_relpath,
)

KEY = {"trace": "t" * 64}
DIGEST = artifact_digest("wcg", KEY)


def tamper(store: ArtifactStore, digest: str) -> None:
    path = store.blob_path(digest)
    path.write_bytes(path.read_bytes() + b"XX")


class TestPutGet:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        assert store.get(DIGEST) is None
        assert store.put(DIGEST, "wcg", b"payload", KEY)
        assert store.get(DIGEST) == b"payload"

    def test_get_survives_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.put(DIGEST, "wcg", b"payload")
        tamper(store, DIGEST)
        assert store.get(DIGEST) is None

    def test_new_process_view_is_merged_in(self, tmp_path):
        first = ArtifactStore(tmp_path / "s")
        second = ArtifactStore(tmp_path / "s")
        first.put(DIGEST, "wcg", b"payload")
        # `second` opened before the write; get() refreshes from disk.
        assert second.get(DIGEST) == b"payload"

    def test_corrupt_index_is_rejected_at_open(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / INDEX_NAME).write_text("{not json")
        with pytest.raises(StoreError):
            ArtifactStore(root)

    def test_foreign_index_is_rejected(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / INDEX_NAME).write_text(json.dumps({"format": "other"}))
        with pytest.raises(StoreError):
            ArtifactStore(root)

    def test_root_must_be_a_directory(self, tmp_path):
        flat = tmp_path / "flat"
        flat.write_text("")
        with pytest.raises(StoreError):
            ArtifactStore(flat)


class TestWriteGating:
    def test_readonly_store_skips_writes(self, tmp_path):
        store = ArtifactStore(tmp_path / "s", readonly=True)
        assert not store.writable
        assert not store.put(DIGEST, "wcg", b"payload")
        assert store.get(DIGEST) is None

    def test_forked_worker_is_readonly(self, tmp_path):
        """A store whose owner pid is another process never writes —
        the single-writer discipline for ``--workers`` pools."""
        store = ArtifactStore(tmp_path / "s")
        store._owner_pid -= 1
        assert not store.writable
        assert not store.put(DIGEST, "wcg", b"payload")

    def test_gc_requires_writable(self, tmp_path):
        store = ArtifactStore(tmp_path / "s", readonly=True)
        with pytest.raises(StoreError):
            store.gc()


class TestGetOrBuild:
    def test_build_once_then_hit(self, tmp_path):
        from repro.profiles.graph import WeightedGraph

        store = ArtifactStore(tmp_path / "s")
        calls = []

        def build():
            calls.append(1)
            graph = WeightedGraph()
            graph.add_edge("a", "b", 2.0)
            return graph

        first = store.get_or_build("wcg", KEY, build)
        second = store.get_or_build("wcg", KEY, build)
        assert len(calls) == 1
        assert first == second
        assert (store.hits, store.misses) == (1, 1)

    def test_corrupt_blob_rebuilds_transparently(self, tmp_path):
        from repro.profiles.graph import WeightedGraph

        store = ArtifactStore(tmp_path / "s")

        def build():
            graph = WeightedGraph()
            graph.add_edge("a", "b", 2.0)
            return graph

        built = store.get_or_build("wcg", KEY, build)
        tamper(store, artifact_digest("wcg", KEY))
        rebuilt = store.get_or_build("wcg", KEY, build)
        assert rebuilt == built
        assert store.misses == 2
        # The rebuild overwrote the tampered blob: next call hits.
        store.get_or_build("wcg", KEY, build)
        assert store.hits == 1

    def test_unknown_kind_is_an_error(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        with pytest.raises(StoreError):
            store.get_or_build("layout", {}, lambda: None)


class TestStatsAndGc:
    def test_stats_split_by_kind(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.put(artifact_digest("wcg", {"trace": "1"}), "wcg", b"abc")
        store.put(artifact_digest("wcg", {"trace": "2"}), "wcg", b"defg")
        store.put(artifact_digest("trg", {"trace": "1"}), "trg", b"hi")
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] == 9
        assert stats["kinds"]["wcg"] == {"entries": 2, "bytes": 7}
        assert stats["kinds"]["trg"] == {"entries": 1, "bytes": 2}

    def test_stats_hit_rate_none_until_first_lookup(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.put(DIGEST, "wcg", b"payload")
        assert store.stats()["hit_rate"] is None

    def test_stats_hit_rate_derived_from_counters(self, tmp_path):
        from repro.profiles.graph import WeightedGraph

        store = ArtifactStore(tmp_path / "s")

        def build():
            graph = WeightedGraph()
            graph.add_edge("a", "b", 1.0)
            return graph

        store.get_or_build("wcg", {"trace": "1"}, build)  # miss
        store.get_or_build("wcg", {"trace": "1"}, build)  # hit
        stats = store.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)
        assert stats["hit_rate"] == 0.5

    def test_gc_drops_entries_with_missing_blobs(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.put(DIGEST, "wcg", b"payload")
        store.blob_path(DIGEST).unlink()
        summary = store.gc()
        assert summary["removed_entries"] == 1
        assert summary["kept_entries"] == 0
        assert store.get(DIGEST) is None

    def test_gc_removes_orphan_blobs(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.put(DIGEST, "wcg", b"payload")
        orphan = store.root / blob_relpath("ff" * 32)
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"stray")
        summary = store.gc()
        assert summary["removed_blobs"] == 1
        assert summary["freed_bytes"] == len(b"stray")
        assert not orphan.exists()
        assert store.get(DIGEST) == b"payload"

    def test_gc_max_bytes_evicts_oldest_first(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        digests = [
            artifact_digest("wcg", {"trace": str(n)}) for n in range(3)
        ]
        for digest in digests:
            store.put(digest, "wcg", b"x" * 10)
        summary = store.gc(max_bytes=15)
        assert summary["kept_entries"] == 1
        assert summary["kept_bytes"] == 10
        # Insertion order is eviction order: only the newest survives.
        assert store.get(digests[0]) is None
        assert store.get(digests[1]) is None
        assert store.get(digests[2]) == b"x" * 10

    def test_gc_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.put(DIGEST, "wcg", b"payload")
        store.gc()
        summary = store.gc()
        assert summary["removed_entries"] == 0
        assert summary["removed_blobs"] == 0
        assert summary["kept_entries"] == 1
