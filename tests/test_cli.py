"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "perl"])
        assert args.workload == "perl"
        assert args.runs == 0
        assert args.cache_size == 8192

    def test_cache_overrides(self):
        args = build_parser().parse_args(
            [
                "compare",
                "go",
                "--cache-size",
                "4096",
                "--line-size",
                "64",
                "--associativity",
                "2",
            ]
        )
        assert args.cache_size == 4096
        assert args.line_size == 64
        assert args.associativity == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("gcc", "go", "ghostscript", "m88ksim", "perl", "vortex"):
            assert name in out

    def test_compare_runs(self, capsys, monkeypatch):
        """Run the compare command on a heavily scaled workload."""
        from repro.workloads import suite as suite_module
        from repro import cli

        tiny = suite_module.by_name("m88ksim").scaled(0.02)
        monkeypatch.setattr(cli, "by_name", lambda _n: tiny)
        assert main(["compare", "m88ksim"]) == 0
        out = capsys.readouterr().out
        assert "GBSC" in out
        assert "miss rate" in out

    def test_correlate_runs(self, capsys, monkeypatch):
        from repro.workloads import suite as suite_module
        from repro import cli

        tiny = suite_module.by_name("m88ksim").scaled(0.02)
        monkeypatch.setattr(cli, "by_name", lambda _n: tiny)
        assert main(["correlate", "m88ksim", "--layouts", "3"]) == 0
        out = capsys.readouterr().out
        assert "TRG metric" in out
        assert "WCG metric" in out
        assert "pearson" in out
