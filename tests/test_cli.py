"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "perl"])
        assert args.workload == "perl"
        assert args.runs == 0
        assert args.cache_size == 8192

    def test_cache_overrides(self):
        args = build_parser().parse_args(
            [
                "compare",
                "go",
                "--cache-size",
                "4096",
                "--line-size",
                "64",
                "--associativity",
                "2",
            ]
        )
        assert args.cache_size == 4096
        assert args.line_size == 64
        assert args.associativity == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("gcc", "go", "ghostscript", "m88ksim", "perl", "vortex"):
            assert name in out

    def test_compare_runs(self, capsys, monkeypatch):
        """Run the compare command on a heavily scaled workload."""
        from repro.workloads import suite as suite_module
        from repro import cli

        tiny = suite_module.by_name("m88ksim").scaled(0.02)
        monkeypatch.setattr(cli, "by_name", lambda _n: tiny)
        assert main(["compare", "m88ksim"]) == 0
        out = capsys.readouterr().out
        assert "GBSC" in out
        assert "miss rate" in out

    def test_correlate_runs(self, capsys, monkeypatch):
        from repro.workloads import suite as suite_module
        from repro import cli

        tiny = suite_module.by_name("m88ksim").scaled(0.02)
        monkeypatch.setattr(cli, "by_name", lambda _n: tiny)
        assert main(["correlate", "m88ksim", "--layouts", "3"]) == 0
        out = capsys.readouterr().out
        assert "TRG metric" in out
        assert "WCG metric" in out
        assert "pearson" in out


class TestChaosCommands:
    def test_chaos_run_parses(self):
        args = build_parser().parse_args(
            ["chaos", "run", "table1", "--fast", "--points", "20",
             "--seed", "1234", "--errors", "eio,kill"]
        )
        assert args.chaos_command == "run"
        assert args.target == "table1"
        assert args.points == 20
        assert args.seed == 1234
        assert args.errors == "eio,kill"
        assert args.workload == "perl"

    def test_chaos_run_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "run", "everything"])

    def test_chaos_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos"])

    def test_chaos_sites_lists_registry(self, capsys):
        from repro.chaos import WRITE_SITES

        assert main(["chaos", "sites"]) == 0
        out = capsys.readouterr().out
        for site in WRITE_SITES:
            assert site in out
        assert "torn" in out
        assert "replace" in out

    def test_chaos_run_campaign_smoke(
        self, capsys, monkeypatch, tmp_path
    ):
        """A 3-point compare campaign on a heavily scaled workload."""
        from repro.workloads import suite as suite_module
        from repro import cli

        tiny = suite_module.by_name("m88ksim").scaled(0.02)
        monkeypatch.setattr(cli, "by_name", lambda _n: tiny)
        out_file = tmp_path / "findings.json"
        code = main(
            ["chaos", "run", "compare", "--workload", "m88ksim",
             "--points", "3", "--seed", "2",
             "--dir", str(tmp_path / "work"), "--out", str(out_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 crash point(s)" in out
        assert "0 contract violation(s)" in out
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["ok"] is True
