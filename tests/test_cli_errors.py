"""Error-path tests for the CLI: bad inputs must fail loudly.

``main`` catches :class:`~repro.errors.ReproError` at the top level
and turns it into exit code 2 with a one-line ``error: ...`` message
on stderr — no traceback.  Programming errors still propagate.
"""

import pytest

from repro.cli import main


def _assert_error_exit(capsys, argv: list[str], fragment: str) -> None:
    assert main(argv) == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("error: ")
    assert fragment in captured.err
    assert len(captured.err.strip().splitlines()) == 1


class TestBadInputs:
    def test_unknown_workload_exits_2(self, capsys):
        _assert_error_exit(
            capsys, ["compare", "not-a-benchmark"], "unknown workload"
        )

    def test_place_missing_trace_file(self, capsys, tmp_path):
        _assert_error_exit(
            capsys,
            [
                "place",
                str(tmp_path / "absent.npz"),
                "-o",
                str(tmp_path / "out.json"),
            ],
            "absent.npz",
        )

    def test_simulate_missing_layout(self, capsys, tmp_path):
        trace = tmp_path / "absent.npz"
        layout = tmp_path / "absent.json"
        _assert_error_exit(
            capsys, ["simulate", str(layout), str(trace)], "absent.json"
        )

    def test_simulate_garbage_layout(self, capsys, tmp_path):
        layout = tmp_path / "garbage.json"
        layout.write_text('{"format": "something-else"}')
        _assert_error_exit(
            capsys,
            ["simulate", str(layout), str(tmp_path / "t.npz")],
            "repro/layout",
        )

    def test_visualize_garbage_layout(self, capsys, tmp_path):
        layout = tmp_path / "garbage.json"
        layout.write_text("[]")
        _assert_error_exit(capsys, ["visualize", str(layout)], "payload")

    def test_invalid_cache_geometry(self, capsys, monkeypatch):
        """A cache size not divisible by the line size is a ConfigError
        caught before any heavy work."""
        from repro import cli
        from repro.workloads import suite as suite_module

        tiny = suite_module.by_name("m88ksim").scaled(0.02)
        monkeypatch.setattr(cli, "by_name", lambda _n: tiny)
        _assert_error_exit(
            capsys,
            ["compare", "m88ksim", "--cache-size", "1000"],
            "not a multiple",
        )

    def test_check_missing_artifact_exits_2(self, capsys, tmp_path):
        _assert_error_exit(
            capsys, ["check", str(tmp_path / "absent.json")], "absent.json"
        )

    def test_check_binary_artifact_exits_2(self, capsys, tmp_path):
        artifact = tmp_path / "trace.npz"
        artifact.write_bytes(b"PK\x03\x04\xff\xfe\x00binary")
        _assert_error_exit(
            capsys, ["check", str(artifact)], "cannot read"
        )

    def test_check_unsupported_format_exits_2(self, capsys, tmp_path):
        artifact = tmp_path / "trace-like.json"
        artifact.write_text('{"format": "repro/trace"}')
        _assert_error_exit(
            capsys, ["check", str(artifact)], "cannot audit"
        )

    def test_lint_missing_path_exits_2(self, capsys, tmp_path):
        _assert_error_exit(
            capsys, ["lint", str(tmp_path / "nowhere")], "does not exist"
        )

    def test_lint_unknown_rule_exits_2(self, capsys, tmp_path):
        module = tmp_path / "m.py"
        module.write_text("x = 1\n")
        _assert_error_exit(
            capsys,
            ["lint", str(module), "--select", "det/no-such-rule"],
            "unknown lint rule",
        )

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        """Ctrl-C is not an error: one-line resume hint, exit 130
        (128 + SIGINT), no traceback."""
        from repro import cli

        def interrupted(_name):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "by_name", interrupted)
        assert cli.main(["compare", "m88ksim"]) == 130
        captured = capsys.readouterr()
        assert captured.err.strip() == (
            "interrupted — resume with --resume"
        )
        assert "Traceback" not in captured.err

    def test_simulated_kill_exits_137(self, monkeypatch):
        from repro import cli
        from repro.runner.faults import SimulatedKill

        def killed(_name):
            raise SimulatedKill

        monkeypatch.setattr(cli, "by_name", killed)
        assert cli.main(["compare", "m88ksim"]) == 137

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_place_unknown_algorithm_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "place",
                    "t.npz",
                    "--algorithm",
                    "magic",
                    "-o",
                    "out.json",
                ]
            )
