"""Error-path tests for the CLI: bad inputs must fail loudly."""

import pytest

from repro.cli import main
from repro.io import SerializationError


class TestBadInputs:
    def test_unknown_workload_raises_key_error(self):
        with pytest.raises(KeyError):
            main(["compare", "not-a-benchmark"])

    def test_place_missing_trace_file(self, tmp_path):
        with pytest.raises(SerializationError):
            main(
                [
                    "place",
                    str(tmp_path / "absent.npz"),
                    "-o",
                    str(tmp_path / "out.json"),
                ]
            )

    def test_simulate_missing_layout(self, tmp_path):
        trace = tmp_path / "absent.npz"
        layout = tmp_path / "absent.json"
        with pytest.raises(SerializationError):
            main(["simulate", str(layout), str(trace)])

    def test_simulate_garbage_layout(self, tmp_path):
        layout = tmp_path / "garbage.json"
        layout.write_text('{"format": "something-else"}')
        with pytest.raises(SerializationError):
            main(["simulate", str(layout), str(tmp_path / "t.npz")])

    def test_visualize_garbage_layout(self, tmp_path):
        layout = tmp_path / "garbage.json"
        layout.write_text("[]")
        with pytest.raises(SerializationError):
            main(["visualize", str(layout)])

    def test_invalid_cache_geometry(self, tmp_path, monkeypatch):
        """A cache size not divisible by the line size is a ConfigError
        raised before any heavy work."""
        from repro import cli
        from repro.errors import ConfigError
        from repro.workloads import suite as suite_module

        tiny = suite_module.by_name("m88ksim").scaled(0.02)
        monkeypatch.setattr(cli, "by_name", lambda _n: tiny)
        with pytest.raises(ConfigError):
            main(["compare", "m88ksim", "--cache-size", "1000"])

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_place_unknown_algorithm_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "place",
                    "t.npz",
                    "--algorithm",
                    "magic",
                    "-o",
                    "out.json",
                ]
            )
