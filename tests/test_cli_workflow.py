"""Tests for the file-based CLI workflow (gen-trace / place / simulate)."""

import pytest

from repro.cli import main
from repro.io import load_layout, load_trace


@pytest.fixture
def tiny_workload(monkeypatch):
    """Route CLI workload lookups to a 2%-scale m88ksim analog."""
    from repro import cli
    from repro.workloads import suite as suite_module

    tiny = suite_module.by_name("m88ksim").scaled(0.02)
    monkeypatch.setattr(cli, "by_name", lambda _n: tiny)
    return tiny


class TestGenTrace:
    def test_writes_loadable_trace(self, tiny_workload, tmp_path, capsys):
        path = tmp_path / "trace.npz"
        assert (
            main(["gen-trace", "m88ksim", "--which", "train", "-o", str(path)])
            == 0
        )
        trace = load_trace(path)
        assert len(trace) >= 1000
        assert "wrote train trace" in capsys.readouterr().out

    def test_scale_flag(self, tiny_workload, tmp_path):
        path = tmp_path / "trace.npz"
        main(["gen-trace", "m88ksim", "--scale", "0.5", "-o", str(path)])
        assert len(load_trace(path)) >= 1000


class TestPlaceAndSimulate:
    @pytest.fixture
    def trace_file(self, tiny_workload, tmp_path):
        path = tmp_path / "train.npz"
        main(["gen-trace", "m88ksim", "--which", "train", "-o", str(path)])
        return path

    @pytest.mark.parametrize(
        "algorithm", ["default", "ph", "hkc", "gbsc", "txd"]
    )
    def test_place_each_algorithm(self, trace_file, tmp_path, algorithm):
        out = tmp_path / f"{algorithm}.json"
        assert (
            main(
                [
                    "place",
                    str(trace_file),
                    "--algorithm",
                    algorithm,
                    "-o",
                    str(out),
                ]
            )
            == 0
        )
        layout = load_layout(out)
        trace = load_trace(trace_file)
        assert sorted(layout.order_by_address()) == sorted(
            trace.program.names
        )

    def test_simulate_round_trip(self, trace_file, tmp_path, capsys):
        layout_path = tmp_path / "layout.json"
        main(["place", str(trace_file), "-o", str(layout_path)])
        capsys.readouterr()
        assert (
            main(["simulate", str(layout_path), str(trace_file)]) == 0
        )
        out = capsys.readouterr().out
        assert "miss rate" in out

    def test_simulate_respects_cache_flags(
        self, trace_file, tmp_path, capsys
    ):
        layout_path = tmp_path / "layout.json"
        main(["place", str(trace_file), "-o", str(layout_path)])
        capsys.readouterr()
        main(
            [
                "simulate",
                str(layout_path),
                str(trace_file),
                "--cache-size",
                "2048",
            ]
        )
        small = capsys.readouterr().out
        main(["simulate", str(layout_path), str(trace_file)])
        big = capsys.readouterr().out
        assert small != big


class TestAnalysisCommands:
    @pytest.fixture
    def artifacts(self, tiny_workload, tmp_path):
        trace_path = tmp_path / "train.npz"
        layout_path = tmp_path / "layout.json"
        main(["gen-trace", "m88ksim", "-o", str(trace_path)])
        main(["place", str(trace_path), "-o", str(layout_path)])
        return layout_path, trace_path

    def test_visualize(self, artifacts, capsys):
        layout_path, _ = artifacts
        capsys.readouterr()
        assert main(["visualize", str(layout_path), "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "cache occupancy" in out
        assert "procedure" in out

    def test_memory(self, artifacts, capsys):
        layout_path, trace_path = artifacts
        capsys.readouterr()
        assert (
            main(["memory", str(layout_path), str(trace_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "reuse distances" in out
        assert "faults over" in out


class TestSpecWorkflow:
    def test_gen_trace_from_spec(self, tmp_path, capsys):
        import json

        spec = {
            "format": "repro/workload",
            "version": 1,
            "name": "demo",
            "graph": {
                "n_procedures": 25,
                "hot_procedures": 5,
                "seed": 9,
            },
            "train": {"seed": 1, "target_events": 1500},
            "test": {"seed": 2, "target_events": 1500},
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        out = tmp_path / "demo.npz"
        assert (
            main(["gen-trace", "--spec", str(spec_path), "-o", str(out)])
            == 0
        )
        trace = load_trace(out)
        assert len(trace) >= 1500
        assert "demo" in capsys.readouterr().out
