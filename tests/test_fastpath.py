"""The fast-path registry: declaration, lookup and validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fastpath import fast_path, fast_path_registry, scalar_twin_of


def test_decoration_registers_and_annotates():
    @fast_path(scalar="tests.test_fastpath.reference")
    def kernel(xs):
        return xs

    name = f"{kernel.__module__}.{kernel.__qualname__}"
    assert fast_path_registry()[name] == "tests.test_fastpath.reference"
    assert scalar_twin_of(kernel) == "tests.test_fastpath.reference"


def test_registry_returns_a_copy():
    snapshot = fast_path_registry()
    snapshot["bogus"] = "entry"
    assert "bogus" not in fast_path_registry()


def test_scalar_must_be_a_dotted_string():
    with pytest.raises(ConfigError):
        fast_path(scalar="notdotted")
    with pytest.raises(ConfigError):
        fast_path(scalar="")


def test_conflicting_reregistration_is_rejected():
    @fast_path(scalar="tests.a.ref")
    def twin_conflict(xs):
        return xs

    with pytest.raises(ConfigError):
        fast_path(scalar="tests.b.other")(twin_conflict)


def test_identical_reregistration_is_idempotent():
    @fast_path(scalar="tests.a.ref")
    def twin_same(xs):
        return xs

    assert fast_path(scalar="tests.a.ref")(twin_same) is twin_same


def test_undecorated_callable_has_no_twin():
    assert scalar_twin_of(len) is None
