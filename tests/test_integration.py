"""End-to-end integration tests across the whole pipeline.

These tests exercise the full chain — synthetic program, trace
generation, profiling, placement, simulation — on small inputs and
assert the paper's qualitative claims hold on them.
"""

import pytest

from repro import (
    PAPER_CACHE,
    DefaultPlacement,
    GBSCPlacement,
    HashemiKaeliCalderPlacement,
    PettisHansenPlacement,
    build_context,
    run_experiment,
    simulate,
)
from repro.cache.config import CacheConfig
from repro.eval.randomization import perturbation_sweep
from repro.trace import (
    CallGraphParams,
    TraceInput,
    generate_trace,
    random_call_graph,
)


@pytest.fixture(scope="module")
def pipeline():
    graph = random_call_graph(
        CallGraphParams(
            n_procedures=120,
            hot_procedures=25,
            seed=314,
            mean_size=700,
            hot_mean_size=900,
        )
    )
    train = generate_trace(
        graph, TraceInput("train", seed=10, target_events=25_000)
    )
    test = generate_trace(
        graph, TraceInput("test", seed=20, target_events=25_000)
    )
    context = build_context(train, PAPER_CACHE)
    return graph, train, test, context


class TestHeadlineClaim:
    def test_gbsc_beats_default(self, pipeline):
        _, _, test, context = pipeline
        result = run_experiment(
            context, test, [DefaultPlacement(), GBSCPlacement()]
        )
        assert (
            result["GBSC"].miss_rate < result["default"].miss_rate
        )

    def test_gbsc_competitive_with_baselines(self, pipeline):
        """GBSC's clean-profile run is at worst marginally behind the
        better of PH and HKC on a generic workload (and ahead of both
        across the suite; see the Figure 5 bench)."""
        _, _, test, context = pipeline
        result = run_experiment(
            context,
            test,
            [
                PettisHansenPlacement(),
                HashemiKaeliCalderPlacement(),
                GBSCPlacement(),
            ],
        )
        best_baseline = min(
            result["PH"].miss_rate, result["HKC"].miss_rate
        )
        assert result["GBSC"].miss_rate <= best_baseline * 1.10

    def test_all_layouts_cover_all_procedures(self, pipeline):
        graph, _, _, context = pipeline
        for algorithm in (
            DefaultPlacement(),
            PettisHansenPlacement(),
            HashemiKaeliCalderPlacement(),
            GBSCPlacement(),
        ):
            layout = algorithm.place(context)
            assert sorted(layout.order_by_address()) == sorted(
                graph.program.names
            )


class TestTrainTestTransfer:
    def test_training_performance_better_than_test(self, pipeline):
        """A layout tuned on the training input is (weakly) better on
        that input than on a different one — the generalization gap
        the paper discusses for m88ksim."""
        _, train, test, context = pipeline
        layout = GBSCPlacement().place(context)
        on_train = simulate(layout, train, PAPER_CACHE).miss_ratio
        on_test = simulate(layout, test, PAPER_CACHE).miss_ratio
        assert on_train <= on_test * 1.25


class TestPerturbationStability:
    def test_perturbed_gbsc_stays_reasonable(self, pipeline):
        """Perturbed profiles must produce different but sane layouts:
        the worst perturbed run stays within 2x of the best."""
        _, _, test, context = pipeline
        (result,) = perturbation_sweep(
            context, test, [GBSCPlacement()], runs=5
        )
        assert result.worst <= result.best * 2.0

    def test_perturbation_changes_layouts(self, pipeline):
        _, _, _, context = pipeline
        clean = GBSCPlacement().place(context)
        noisy = GBSCPlacement().place(context.perturbed(0.1, seed=9))
        assert clean != noisy


class TestSmallCache:
    def test_placement_still_valid_at_1kb(self, pipeline):
        graph, train, test, _ = pipeline
        config = CacheConfig(size=1024, line_size=32)
        context = build_context(train, config)
        layout = GBSCPlacement().place(context)
        stats = simulate(layout, test, config)
        assert 0 < stats.miss_rate < 1
