"""Tests for artifact serialisation."""

import json

import pytest

from repro.io import (
    SerializationError,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    graph_from_dict,
    graph_to_dict,
    layout_from_dict,
    layout_to_dict,
    load_graph,
    load_layout,
    load_program,
    load_trace,
    program_from_dict,
    program_to_dict,
    save_graph,
    save_layout,
    save_program,
    save_trace,
)
from repro.profiles.graph import WeightedGraph
from repro.program.layout import Layout
from repro.program.procedure import ChunkId
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


@pytest.fixture
def program() -> Program:
    return Program.from_sizes({"a": 100, "b": 250})


class TestProgramRoundtrip:
    def test_roundtrip(self, program, tmp_path):
        path = tmp_path / "program.json"
        save_program(program, path)
        assert load_program(path) == program

    def test_preserves_order(self, tmp_path):
        program = Program.from_sizes({"z": 1, "a": 2, "m": 3})
        path = tmp_path / "program.json"
        save_program(program, path)
        assert load_program(path).names == ("z", "a", "m")

    def test_deterministic_output(self, program, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        save_program(program, p1)
        save_program(program, p2)
        assert p1.read_text() == p2.read_text()

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            program_from_dict({"format": "repro/layout", "version": 1})

    def test_wrong_version_rejected(self, program):
        data = program_to_dict(program)
        data["version"] = 99
        with pytest.raises(SerializationError):
            program_from_dict(data)

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            program_from_dict(
                {
                    "format": "repro/program",
                    "version": 1,
                    "procedures": [{"nom": "a"}],
                }
            )


class TestLayoutRoundtrip:
    def test_roundtrip(self, program, tmp_path):
        layout = Layout(program, {"a": 64, "b": 1000})
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        assert load_layout(path) == layout

    def test_invalid_layout_file_rejected(self, program, tmp_path):
        data = layout_to_dict(Layout.default(program))
        data["addresses"]["b"] = 10  # overlaps a
        with pytest.raises(Exception):
            layout_from_dict(data)

    def test_unreadable_file(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(SerializationError):
            load_layout(path)

    def test_garbage_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_layout(path)


class TestTraceRoundtrip:
    def test_roundtrip(self, program, tmp_path):
        trace = Trace(
            program,
            [
                TraceEvent.full("a", 100),
                TraceEvent("b", 50, 100),
                TraceEvent.full("a", 100),
            ],
        )
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert list(loaded) == list(trace)
        assert loaded.program == program

    def test_empty_trace(self, program, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(Trace(program, []), path)
        assert len(load_trace(path)) == 0

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "trace.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(SerializationError):
            load_trace(path)


class TestGraphRoundtrip:
    def test_string_nodes(self, tmp_path):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 3.5)
        graph.add_node("isolated")
        path = tmp_path / "graph.json"
        save_graph(graph, path)
        assert load_graph(path) == graph

    def test_chunk_nodes(self, tmp_path):
        graph = WeightedGraph()
        graph.add_edge(ChunkId("f", 0), ChunkId("g", 2), 7.0)
        path = tmp_path / "trg.json"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.weight(ChunkId("f", 0), ChunkId("g", 2)) == 7.0

    def test_deterministic_regardless_of_insertion(self, tmp_path):
        g1 = WeightedGraph()
        g1.add_edge("a", "b", 1.0)
        g1.add_edge("c", "d", 2.0)
        g2 = WeightedGraph()
        g2.add_edge("d", "c", 2.0)
        g2.add_edge("b", "a", 1.0)
        assert json.dumps(graph_to_dict(g1)) == json.dumps(
            graph_to_dict(g2)
        )

    def test_malformed_node_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_dict(
                {
                    "format": "repro/graph",
                    "version": 1,
                    "nodes": [123],
                    "edges": [],
                }
            )

    def test_malformed_chunk_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_dict(
                {
                    "format": "repro/graph",
                    "version": 1,
                    "nodes": [{"proc": "x"}],
                    "edges": [],
                }
            )


class TestAtomicWrites:
    def test_text_roundtrip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_kill_mid_write_leaves_previous_artifact(self, tmp_path):
        """A process dying inside a write must leave the old file —
        never a truncated new one."""
        from repro.runner.faults import SimulatedKill

        path = tmp_path / "out.txt"
        path.write_text("previous contents")
        with pytest.raises(SimulatedKill):
            with atomic_writer(path) as handle:
                handle.write("half of the new con")
                raise SimulatedKill("power loss mid-write")
        assert path.read_text() == "previous contents"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_kill_mid_write_leaves_no_new_artifact(self, tmp_path):
        from repro.runner.faults import SimulatedKill

        path = tmp_path / "fresh.txt"
        with pytest.raises(SimulatedKill):
            with atomic_writer(path) as handle:
                handle.write("torn")
                raise SimulatedKill
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_save_layout_survives_injected_kill(self, program, tmp_path):
        """Killing an artifact save through the fault harness keeps
        the previous layout readable."""
        from repro.runner import BatchRunner, FaultPlan, Injection
        from repro.runner.tasks import Batch, TaskSpec

        old = Layout.default(program)
        path = tmp_path / "layout.json"
        save_layout(old, path)
        plan = FaultPlan(
            [Injection(task="t:1", point="artifact", error="kill")]
        )
        batch = Batch(
            command="test",
            grid_id="g",
            tasks=(
                TaskSpec(
                    key="t:1",
                    kind="unit",
                    run=lambda env: {"v": 1},
                    artifact="layout.json",
                ),
            ),
            render=lambda results: "",
        )
        from repro.runner.faults import SimulatedKill

        with pytest.raises(SimulatedKill):
            BatchRunner(batch, tmp_path, plan=plan).run()
        assert load_layout(path) == old

    def test_unsupported_mode_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            with atomic_writer(tmp_path / "x", "a"):
                pass


class TestReaderErrorMessages:
    """Truncated/corrupt artifacts fail with the path and the artifact
    kind that was expected there."""

    def test_truncated_npz_names_path_and_kind(self, program, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(Trace(program, [TraceEvent.full("a", 100)]), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SerializationError) as excinfo:
            load_trace(path)
        assert "trace.npz" in str(excinfo.value)
        assert "trace" in str(excinfo.value)

    def test_truncated_json_names_path_and_kind(self, program, tmp_path):
        path = tmp_path / "layout.json"
        save_layout(Layout.default(program), path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(SerializationError) as excinfo:
            load_layout(path)
        assert "layout.json" in str(excinfo.value)
        assert "layout" in str(excinfo.value)

    def test_missing_npz_key_wrapped(self, program, tmp_path):
        import numpy as np

        path = tmp_path / "trace.npz"
        with open(path, "wb") as handle:
            np.savez_compressed(handle, wrong_key=np.zeros(3))
        with pytest.raises(SerializationError) as excinfo:
            load_trace(path)
        assert "trace.npz" in str(excinfo.value)

    def test_wrong_kind_json_names_expectation(self, program, tmp_path):
        path = tmp_path / "mislabeled.json"
        save_program(program, path)
        with pytest.raises(SerializationError) as excinfo:
            load_layout(path)
        assert "mislabeled.json" in str(excinfo.value)


class TestPipelineThroughFiles:
    def test_place_from_saved_artifacts(self, tmp_path):
        """Profile in one 'process', place in another, simulate in a
        third — communicating only through files."""
        from repro.cache.config import PAPER_CACHE
        from repro.cache.simulator import simulate
        from repro.core.gbsc import GBSCPlacement
        from repro.eval.experiment import build_context
        from repro.trace.callgraph import CallGraphParams, random_call_graph
        from repro.trace.generator import TraceInput, generate_trace

        graph = random_call_graph(
            CallGraphParams(n_procedures=40, hot_procedures=8, seed=5)
        )
        trace = generate_trace(
            graph, TraceInput("t", seed=1, target_events=4000)
        )
        trace_path = tmp_path / "trace.npz"
        save_trace(trace, trace_path)

        # "Second process": load, profile, place, save layout.
        loaded_trace = load_trace(trace_path)
        context = build_context(loaded_trace, PAPER_CACHE)
        layout = GBSCPlacement().place(context)
        layout_path = tmp_path / "layout.json"
        save_layout(layout, layout_path)

        # "Third process": load layout, simulate.
        loaded_layout = load_layout(layout_path)
        stats = simulate(loaded_layout, loaded_trace, PAPER_CACHE)
        assert stats == simulate(layout, trace, PAPER_CACHE)
