"""Metamorphic and cross-implementation properties of the pipeline.

These tests assert relationships that must hold between *pairs* of
runs — the strongest guards against silent simulator or profiling
bugs, because they do not depend on any hand-computed expected value.
"""

import random

import pytest
from hypothesis import given, settings

# The tolerance-based cache properties are not theorems; derandomize
# so the checked example set is fixed and the suite stays stable.
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate
from repro.placement.ph import ph_order
from repro.profiles.graph import WeightedGraph
from repro.profiles.trg import build_trg
from repro.profiles.wcg import build_wcg_from_refs
from repro.program.layout import Layout
from repro.program.program import Program
from tests.conftest import full_trace


def random_program(rng: random.Random, n: int, line_size: int = 32):
    """Procedures with line-aligned sizes (for shift-invariance tests)."""
    return Program.from_sizes(
        {
            f"p{i}": line_size * rng.randint(1, 12)
            for i in range(n)
        }
    )


def random_trace(rng: random.Random, program: Program, length: int):
    names = list(program.names)
    return full_trace(
        program, [rng.choice(names) for _ in range(length)]
    )


class TestSimulatorMetamorphic:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_shift_by_cache_size_preserves_misses(self, seed):
        """Shifting a line-aligned layout by the cache size maps every
        procedure to the same sets with the same tags-per-set
        relationships, so miss counts are identical."""
        rng = random.Random(seed)
        config = CacheConfig(size=512, line_size=32)
        program = random_program(rng, 6)
        trace = random_trace(rng, program, 120)
        layout = Layout.random(program, seed=seed)
        shifted = layout.shifted(config.size)
        assert (
            simulate(layout, trace, config).misses
            == simulate(shifted, trace, config).misses
        )

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_engines_agree_on_random_workloads(self, seed):
        rng = random.Random(seed)
        config = CacheConfig(size=256, line_size=32)
        program = random_program(rng, 5)
        trace = random_trace(rng, program, 100)
        layout = Layout.random(program, seed=seed + 1)
        fast = simulate(layout, trace, config, engine="fast")
        reference = simulate(layout, trace, config, engine="reference")
        lru = simulate(layout, trace, config, engine="lru")
        assert fast == reference
        assert fast.misses == lru.misses

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_fully_associative_lru_inclusion_property(self, seed):
        """LRU is a stack algorithm: a fully-associative LRU cache of
        larger capacity never misses more than a smaller one on the
        same stream.  (Note this is NOT true of set-associative
        geometry changes, which remap the sets.)"""
        rng = random.Random(seed)
        program = random_program(rng, 6)
        trace = random_trace(rng, program, 150)
        layout = Layout.random(program, seed=seed)
        small = simulate(
            layout,
            trace,
            CacheConfig(size=256, line_size=32, associativity=8),
        )
        large = simulate(
            layout,
            trace,
            CacheConfig(size=512, line_size=32, associativity=16),
        )
        assert large.misses <= small.misses

    @given(seed=st.integers(0, 300))
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_doubling_cache_size_never_more_misses_direct(self, seed):
        """A direct-mapped cache of double size with the same line size
        has strictly more sets; on our traces this should not increase
        misses (not a theorem — Belady anomalies exist for DM too —
        so allow a tiny tolerance)."""
        rng = random.Random(seed)
        program = random_program(rng, 6)
        trace = random_trace(rng, program, 150)
        layout = Layout.random(program, seed=seed)
        small = simulate(
            layout, trace, CacheConfig(size=256, line_size=32)
        )
        large = simulate(
            layout, trace, CacheConfig(size=512, line_size=32)
        )
        assert large.misses <= small.misses * 1.05

    @given(seed=st.integers(0, 300))
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_trace_concatenation_additivity_bound(self, seed):
        """Misses of a concatenated trace are at most the sum of the
        parts' misses (the second part can only gain from warm state,
        modulo the lines the first part left behind)."""
        rng = random.Random(seed)
        config = CacheConfig(size=256, line_size=32)
        program = random_program(rng, 5)
        layout = Layout.random(program, seed=seed)
        refs_a = [rng.choice(program.names) for _ in range(60)]
        refs_b = [rng.choice(program.names) for _ in range(60)]
        misses_a = simulate(
            layout, full_trace(program, refs_a), config
        ).misses
        misses_b = simulate(
            layout, full_trace(program, refs_b), config
        ).misses
        combined = simulate(
            layout, full_trace(program, refs_a + refs_b), config
        ).misses
        assert combined <= misses_a + misses_b


class TestProfileMetamorphic:
    @given(
        refs=st.lists(st.sampled_from("abcde"), min_size=2, max_size=120)
    )
    @settings(max_examples=50)
    def test_wcg_total_weight_counts_transitions(self, refs):
        graph = build_wcg_from_refs(refs)
        transitions = sum(
            1 for x, y in zip(refs, refs[1:]) if x != y
        )
        assert graph.total_weight() == transitions

    @given(
        refs=st.lists(st.sampled_from("abcd"), max_size=120),
        capacity=st.integers(1, 50),
    )
    @settings(max_examples=50)
    def test_trg_weight_bounded_by_references(self, refs, capacity):
        """Each reference credits each other block at most once, so no
        edge weight can exceed the total reference count."""
        graph, stats = build_trg(refs, lambda _b: 1, capacity)
        for _, _, weight in graph.edges():
            assert weight <= stats.refs_processed

    @given(
        refs=st.lists(st.sampled_from("abcd"), max_size=100),
    )
    @settings(max_examples=50)
    def test_trg_monotone_in_capacity(self, refs):
        """A larger Q can only see more interleavings: every edge
        weight under a small capacity is <= its weight under a large
        capacity."""
        small, _ = build_trg(refs, lambda _b: 1, capacity=2)
        large, _ = build_trg(refs, lambda _b: 1, capacity=100)
        for a, b, weight in small.edges():
            assert weight <= large.weight(a, b)


class TestPlacementMetamorphic:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_ph_order_is_permutation(self, seed):
        rng = random.Random(seed)
        program = Program.from_sizes(
            {f"p{i}": rng.randint(10, 200) for i in range(10)}
        )
        wcg = WeightedGraph()
        for _ in range(rng.randint(0, 25)):
            a, b = rng.sample(program.names, 2)
            wcg.add_edge(a, b, rng.randint(1, 50))
        order = ph_order(program, wcg)
        assert sorted(order) == sorted(program.names)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_gbsc_layout_always_valid(self, seed):
        from repro.core.gbsc import GBSCPlacement
        from repro.placement.base import PlacementContext
        from repro.profiles.trg import build_trgs
        from repro.profiles.wcg import build_wcg

        rng = random.Random(seed)
        config = CacheConfig(size=256, line_size=32)
        program = Program.from_sizes(
            {f"p{i}": rng.randint(20, 400) for i in range(8)}
        )
        refs = [rng.choice(program.names) for _ in range(150)]
        trace = full_trace(program, refs)
        context = PlacementContext(
            program=program,
            config=config,
            wcg=build_wcg(trace),
            trgs=build_trgs(trace, config, chunk_size=64),
            popular=tuple(sorted(trace.touched_procedures())),
        )
        layout = GBSCPlacement().place(context)
        # Constructor validation + full coverage are the invariants.
        assert sorted(layout.order_by_address()) == sorted(program.names)
