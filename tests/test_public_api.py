"""The documented public API must be importable and coherent."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module",
    [
        "repro.cache",
        "repro.core",
        "repro.eval",
        "repro.obs",
        "repro.placement",
        "repro.profiles",
        "repro.program",
        "repro.trace",
        "repro.workloads",
    ],
)
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module}.{name}"


def test_quickstart_docstring_flow():
    """The flow shown in the package docstring actually runs."""
    from repro import PAPER_CACHE, GBSCPlacement, build_context, simulate
    from repro.workloads import PERL

    workload = PERL.scaled(0.02)
    train = workload.trace("train")
    context = build_context(train, PAPER_CACHE)
    layout = GBSCPlacement().place(context)
    stats = simulate(layout, workload.trace("test"), PAPER_CACHE)
    assert 0.0 <= stats.miss_rate < 1.0


def test_errors_hierarchy():
    from repro import (
        ConfigError,
        LayoutError,
        ObservabilityError,
        PlacementError,
        ProgramError,
        ReproError,
        TraceError,
    )

    for error in (
        ConfigError,
        LayoutError,
        ObservabilityError,
        PlacementError,
        ProgramError,
        TraceError,
    ):
        assert issubclass(error, ReproError)
