"""The shared failure-handling policies of ``repro.resilience``."""

from __future__ import annotations

import pytest

from repro.errors import TransientTaskError
from repro.resilience import (
    DEFAULT_BACKOFF,
    DEFAULT_RETRIES,
    DeadlinePolicy,
    Degradation,
    RetryPolicy,
    best_effort,
    null_sleep,
)


class TestRetryPolicy:
    def test_attempts_counts_initial_try(self):
        assert RetryPolicy(retries=2).attempts == 3
        assert RetryPolicy(retries=0).attempts == 1

    def test_negative_retries_clamp_to_one_attempt(self):
        assert RetryPolicy(retries=-5).attempts == 1

    def test_backoff_doubles(self):
        policy = RetryPolicy(backoff_base=0.1)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)

    def test_defaults_match_runner_contract(self):
        policy = RetryPolicy()
        assert policy.retries == DEFAULT_RETRIES
        assert policy.backoff_base == DEFAULT_BACKOFF

    def test_run_retries_transient_then_succeeds(self):
        sleeps: list[float] = []
        attempts: list[int] = []

        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 2:
                raise TransientTaskError("again")
            return "done"

        result = RetryPolicy(retries=2, backoff_base=1.0).run(
            flaky, sleep=sleeps.append
        )
        assert result == "done"
        assert attempts == [0, 1, 2]
        assert sleeps == [1.0, 2.0]

    def test_run_exhausted_budget_raises_last_error(self):
        def always(attempt):
            raise TransientTaskError("never")

        with pytest.raises(TransientTaskError):
            RetryPolicy(retries=1).run(always, sleep=null_sleep)

    def test_run_non_transient_propagates_immediately(self):
        attempts: list[int] = []

        def broken(attempt):
            attempts.append(attempt)
            raise ValueError("bug")

        with pytest.raises(ValueError):
            RetryPolicy(retries=3).run(broken, sleep=null_sleep)
        assert attempts == [0]

    def test_custom_transient_classes(self):
        calls: list[int] = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt == 0:
                raise OSError("disk hiccup")
            return attempt

        result = RetryPolicy(retries=1).run(
            flaky, transient=(OSError,), sleep=null_sleep
        )
        assert result == 1
        assert calls == [0, 1]


class TestDeadlinePolicy:
    def test_none_is_unlimited(self):
        assert not DeadlinePolicy(None).exceeded(1e9)

    def test_soft_budget(self):
        policy = DeadlinePolicy(10.0)
        assert not policy.exceeded(10.0)
        assert policy.exceeded(10.1)


class TestDegradation:
    def test_limit_reached_on_nth_strike(self):
        ladder = Degradation(limit=2)
        assert ladder.record("k") is False
        assert ladder.record("k") is True
        assert ladder.record("k") is True  # sticky until reset
        assert ladder.count("k") == 3

    def test_keys_are_independent(self):
        ladder = Degradation(limit=2)
        ladder.record("a")
        assert ladder.record("b") is False
        assert ladder.count("a") == 1

    def test_reset_forgets_strikes(self):
        ladder = Degradation(limit=2)
        ladder.record("k")
        ladder.record("k")
        ladder.reset("k")
        assert ladder.count("k") == 0
        assert ladder.record("k") is False

    def test_zero_limit_rejected(self):
        with pytest.raises(ValueError):
            Degradation(limit=0)


class TestBestEffort:
    def test_success_returns_true(self):
        ran: list[int] = []
        assert best_effort(ran.append, 1) is True
        assert ran == [1]

    def test_swallowed_failure_returns_false(self):
        def boom():
            raise OSError("expected")

        assert best_effort(boom) is False

    def test_unexpected_failure_propagates(self):
        def bug():
            raise ValueError("not a cleanup failure")

        with pytest.raises(ValueError):
            best_effort(bug)

    def test_custom_swallow_classes(self):
        def boom():
            raise KeyError("missing")

        assert best_effort(boom, swallow=(KeyError,)) is False

    def test_null_sleep_does_nothing(self):
        null_sleep(1e9)
