"""Tests for synthetic call-graph models and their random generator."""

import pytest

from repro.errors import ProgramError
from repro.program.procedure import Procedure
from repro.trace.callgraph import (
    CallGraphModel,
    CallGraphParams,
    CallSite,
    ProcedureModel,
    random_call_graph,
)


def _leaf(name: str, size: int = 64) -> ProcedureModel:
    return ProcedureModel(procedure=Procedure(name, size))


class TestModelValidation:
    def test_root_must_exist(self):
        with pytest.raises(ProgramError):
            CallGraphModel("nope", {"a": _leaf("a")})

    def test_unknown_callee_rejected(self):
        bad = ProcedureModel(
            procedure=Procedure("a", 64),
            call_sites=(CallSite("ghost", 1.0),),
            mean_invocations=1.0,
        )
        with pytest.raises(ProgramError):
            CallGraphModel("a", {"a": bad})

    def test_call_site_weight_positive(self):
        with pytest.raises(ProgramError):
            CallSite("x", 0.0)

    def test_body_fraction_bounds(self):
        with pytest.raises(ProgramError):
            ProcedureModel(procedure=Procedure("a", 10), body_fraction=0.0)
        with pytest.raises(ProgramError):
            ProcedureModel(procedure=Procedure("a", 10), body_fraction=1.5)

    def test_reachable(self):
        models = {
            "root": ProcedureModel(
                procedure=Procedure("root", 64),
                call_sites=(CallSite("a", 1.0),),
                mean_invocations=1.0,
            ),
            "a": _leaf("a"),
            "orphan": _leaf("orphan"),
        }
        graph = CallGraphModel("root", models)
        assert graph.reachable() == {"root", "a"}

    def test_program_derivation(self):
        graph = CallGraphModel("a", {"a": _leaf("a", 128)})
        assert graph.program.size_of("a") == 128


class TestParamsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_procedures": 1},
            {"hot_procedures": 0},
            {"n_procedures": 10, "hot_procedures": 11},
            {"depth": 0},
            {"min_size": 0},
            {"min_size": 100, "max_size": 50},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ProgramError):
            CallGraphParams(**kwargs)


class TestRandomGeneration:
    def test_deterministic(self):
        params = CallGraphParams(n_procedures=50, hot_procedures=10, seed=3)
        a = random_call_graph(params)
        b = random_call_graph(params)
        assert a.program == b.program
        for name in a.program.names:
            assert a.model_of(name).call_sites == b.model_of(name).call_sites

    def test_different_seeds_differ(self):
        a = random_call_graph(
            CallGraphParams(n_procedures=50, hot_procedures=10, seed=1)
        )
        b = random_call_graph(
            CallGraphParams(n_procedures=50, hot_procedures=10, seed=2)
        )
        assert a.program != b.program

    def test_procedure_count(self):
        graph = random_call_graph(
            CallGraphParams(n_procedures=77, hot_procedures=5, seed=0)
        )
        assert len(graph.program) == 77

    def test_size_bounds_respected(self):
        params = CallGraphParams(
            n_procedures=100,
            hot_procedures=10,
            seed=0,
            min_size=64,
            max_size=1024,
        )
        graph = random_call_graph(params)
        for proc in graph.program:
            assert 64 <= proc.size <= 1024

    def test_root_is_first_procedure(self):
        graph = random_call_graph(
            CallGraphParams(n_procedures=20, hot_procedures=3, seed=0)
        )
        assert graph.root == "f0000"

    def test_hot_procedures_reachable(self):
        """The dynamic working set must actually be executable."""
        params = CallGraphParams(
            n_procedures=200, hot_procedures=40, seed=11
        )
        graph = random_call_graph(params)
        reachable = graph.reachable()
        # All call sites with the hot-bias multiplier must be reachable;
        # we can't recover the hot set directly, but the root's extra
        # sites guarantee at least hot_procedures reachable procedures.
        assert len(reachable) >= params.hot_procedures

    def test_no_self_calls(self):
        graph = random_call_graph(
            CallGraphParams(n_procedures=100, hot_procedures=10, seed=4)
        )
        for name in graph.program.names:
            for site in graph.model_of(name).call_sites:
                assert site.callee != name
