"""Tests for trace events."""

import pytest

from repro.errors import TraceError
from repro.program.program import Program
from repro.trace.events import TraceEvent


@pytest.fixture
def program() -> Program:
    return Program.from_sizes({"a": 100})


class TestTraceEvent:
    def test_full(self):
        event = TraceEvent.full("a", 100)
        assert event == TraceEvent("a", 0, 100)

    def test_validate_ok(self, program):
        TraceEvent("a", 10, 90).validate(program)

    def test_unknown_procedure(self, program):
        with pytest.raises(TraceError):
            TraceEvent("zz", 0, 1).validate(program)

    def test_zero_length_rejected(self, program):
        with pytest.raises(TraceError):
            TraceEvent("a", 0, 0).validate(program)

    def test_extent_past_end_rejected(self, program):
        with pytest.raises(TraceError):
            TraceEvent("a", 50, 51).validate(program)

    def test_negative_start_rejected(self, program):
        with pytest.raises(TraceError):
            TraceEvent("a", -1, 10).validate(program)
