"""Tests for the stochastic trace generator."""

import pytest

from repro.errors import TraceError
from repro.trace.callgraph import CallGraphParams, random_call_graph
from repro.trace.generator import TraceInput, generate_trace


@pytest.fixture(scope="module")
def graph():
    return random_call_graph(
        CallGraphParams(n_procedures=60, hot_procedures=12, seed=9)
    )


class TestInputValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_events": 0},
            {"target_events": 100, "phases": 0},
            {"target_events": 100, "phase_skew": -1.0},
            {"target_events": 100, "body_scale": 0.0},
            {"target_events": 100, "body_scale": 3.0},
            {"target_events": 100, "max_depth": 0},
        ],
    )
    def test_invalid_inputs(self, kwargs):
        with pytest.raises(TraceError):
            TraceInput(name="x", seed=0, **kwargs)


class TestGeneration:
    def test_reaches_target_length(self, graph):
        trace = generate_trace(
            graph, TraceInput("t", seed=1, target_events=5000)
        )
        assert len(trace) >= 5000
        # Never wildly overshoots (at most a couple extra events).
        assert len(trace) <= 5010

    def test_deterministic(self, graph):
        inp = TraceInput("t", seed=42, target_events=2000)
        a = generate_trace(graph, inp)
        b = generate_trace(graph, inp)
        assert list(a.proc_indices) == list(b.proc_indices)
        assert list(a.extent_starts) == list(b.extent_starts)

    def test_different_seeds_differ(self, graph):
        a = generate_trace(graph, TraceInput("t", seed=1, target_events=2000))
        b = generate_trace(graph, TraceInput("t", seed=2, target_events=2000))
        assert list(a.proc_indices) != list(b.proc_indices)

    def test_extents_valid(self, graph):
        """Trace.from_arrays validates extents; a successful build is
        the assertion, but double-check a sample explicitly."""
        trace = generate_trace(
            graph, TraceInput("t", seed=3, target_events=3000)
        )
        for event in list(trace)[:200]:
            event.validate(graph.program)

    def test_starts_with_root(self, graph):
        trace = generate_trace(
            graph, TraceInput("t", seed=4, target_events=100)
        )
        assert trace[0].procedure == graph.root

    def test_only_reachable_procedures_appear(self, graph):
        trace = generate_trace(
            graph, TraceInput("t", seed=5, target_events=5000)
        )
        assert trace.touched_procedures() <= graph.reachable()

    def test_phases_change_behaviour(self, graph):
        """With strong phase skew, the first and last quarters of the
        trace should reference measurably different procedure mixes."""
        trace = generate_trace(
            graph,
            TraceInput(
                "t", seed=6, target_events=20000, phases=4, phase_skew=2.0
            ),
        )
        quarter = len(trace) // 4
        head = set(trace.proc_indices[:quarter].tolist())
        tail = set(trace.proc_indices[-quarter:].tolist())
        assert head != tail

    def test_zero_skew_single_phase(self, graph):
        trace = generate_trace(
            graph,
            TraceInput(
                "t", seed=7, target_events=1000, phases=1, phase_skew=0.0
            ),
        )
        assert len(trace) >= 1000

    def test_max_depth_limits_stack(self, graph):
        """A depth-1 run can only ever execute the root procedure."""
        trace = generate_trace(
            graph,
            TraceInput("t", seed=8, target_events=500, max_depth=1),
        )
        assert trace.touched_procedures() == {graph.root}

    def test_body_scale_changes_extents(self, graph):
        small = generate_trace(
            graph,
            TraceInput("t", seed=9, target_events=3000, body_scale=0.5),
        )
        large = generate_trace(
            graph,
            TraceInput("t", seed=9, target_events=3000, body_scale=1.0),
        )
        assert small.total_bytes < large.total_bytes
