"""Tests for generator internals: phase tables, sampling, bisect."""

import random

import pytest

from repro.program.procedure import Procedure
from repro.trace.callgraph import CallGraphModel, CallSite, ProcedureModel
from repro.trace.generator import (
    TraceInput,
    _bisect,
    _PhaseTables,
    generate_trace,
)


def two_leaf_graph() -> CallGraphModel:
    models = {
        "root": ProcedureModel(
            procedure=Procedure("root", 64),
            call_sites=(CallSite("x", 1.0), CallSite("y", 1.0)),
            mean_invocations=8.0,
        ),
        "x": ProcedureModel(procedure=Procedure("x", 64)),
        "y": ProcedureModel(procedure=Procedure("y", 64)),
    }
    return CallGraphModel("root", models)


class TestBisect:
    def test_finds_first_exceeding(self):
        cumulative = [1.0, 3.0, 6.0]
        assert _bisect(cumulative, 0.5) == 0
        assert _bisect(cumulative, 1.0) == 1
        assert _bisect(cumulative, 2.9) == 1
        assert _bisect(cumulative, 5.9) == 2

    def test_single_entry(self):
        assert _bisect([2.0], 1.5) == 0


class TestPhaseTables:
    def test_cached_per_phase(self):
        graph = two_leaf_graph()
        inp = TraceInput("t", seed=1, target_events=100, phases=2)
        tables = _PhaseTables(graph, inp)
        first = tables.sites_for(graph.model_of("root"), 0)
        again = tables.sites_for(graph.model_of("root"), 0)
        assert first is again

    def test_phases_reweight_sites(self):
        graph = two_leaf_graph()
        inp = TraceInput(
            "t", seed=1, target_events=100, phases=2, phase_skew=1.5
        )
        tables = _PhaseTables(graph, inp)
        phase0, _ = tables.sites_for(graph.model_of("root"), 0)
        phase1, _ = tables.sites_for(graph.model_of("root"), 1)
        assert phase0 != phase1

    def test_zero_skew_keeps_base_weights(self):
        graph = two_leaf_graph()
        inp = TraceInput(
            "t", seed=1, target_events=100, phases=3, phase_skew=0.0
        )
        tables = _PhaseTables(graph, inp)
        cumulative, callees = tables.sites_for(graph.model_of("root"), 2)
        assert cumulative == [1.0, 2.0]
        assert callees == ["x", "y"]

    def test_leaf_has_no_sites(self):
        graph = two_leaf_graph()
        inp = TraceInput("t", seed=1, target_events=100)
        tables = _PhaseTables(graph, inp)
        cumulative, callees = tables.sites_for(graph.model_of("x"), 0)
        assert cumulative == []
        assert callees == []


class TestLeafOnlyRoot:
    def test_root_without_sites_still_generates(self):
        graph = CallGraphModel(
            "solo",
            {"solo": ProcedureModel(procedure=Procedure("solo", 128))},
        )
        trace = generate_trace(
            graph, TraceInput("t", seed=0, target_events=50)
        )
        assert len(trace) >= 50
        assert trace.touched_procedures() == {"solo"}


class TestExtentWrap:
    def test_cursor_wraps_emit_two_events(self):
        """A large body fraction forces cursor wraps, which must split
        into two in-bounds extents rather than run off the end."""
        graph = two_leaf_graph()
        trace = generate_trace(
            graph,
            TraceInput("t", seed=3, target_events=500, body_scale=2.0),
        )
        for event in trace:
            size = graph.program.size_of(event.procedure)
            assert 0 <= event.start < size
            assert event.start + event.length <= size
