"""Tests for the canonical reference patterns."""

import pytest

from repro.errors import TraceError
from repro.trace.patterns import (
    alternation,
    caller_callee_loop,
    figure1_program,
    figure1_trace,
    full_body_trace,
    phased,
    round_robin,
)


class TestBuilders:
    def test_alternation(self):
        assert alternation("a", "b", 2) == ["a", "b", "a", "b"]

    def test_phased(self):
        assert phased([["x"], ["y"]], 2) == ["x", "x", "y", "y"]

    def test_phased_multi_member_groups(self):
        assert phased([["a", "b"]], 2) == ["a", "b", "a", "b"]

    def test_round_robin(self):
        assert round_robin(["a", "b", "c"], 2) == [
            "a", "b", "c", "a", "b", "c",
        ]

    def test_caller_callee_loop(self):
        assert caller_callee_loop("M", ["x", "y"], 3) == [
            "M", "x", "M", "y", "M", "x",
        ]

    @pytest.mark.parametrize(
        "call",
        [
            lambda: alternation("a", "b", 0),
            lambda: phased([], 1),
            lambda: phased([[]], 1),
            lambda: phased([["a"]], 0),
            lambda: round_robin([], 1),
            lambda: round_robin(["a"], 0),
            lambda: caller_callee_loop("M", [], 1),
            lambda: caller_callee_loop("M", ["x"], 0),
            lambda: figure1_trace(True, 0),
        ],
    )
    def test_validation(self, call):
        with pytest.raises(TraceError):
            call()


class TestFigure1:
    def test_program_shape(self):
        program = figure1_program()
        assert program.names == ("M", "X", "Y", "Z")
        assert program.total_size == 128

    def test_trace2_structure(self):
        refs = figure1_trace(alternating=False, iterations=2)
        assert refs == [
            "M", "X", "M", "Z",
            "M", "X", "M", "Z",
            "M", "Y", "M", "Z",
            "M", "Y", "M", "Z",
        ]

    def test_trace1_alternates(self):
        refs = figure1_trace(alternating=True, iterations=1)
        assert refs == ["M", "X", "M", "Z", "M", "Y", "M", "Z"]

    def test_both_traces_same_wcg(self):
        """The package-level restatement of the Figure 1 claim."""
        from repro.profiles.wcg import build_wcg_from_refs

        wcg1 = build_wcg_from_refs(figure1_trace(True))
        wcg2 = build_wcg_from_refs(figure1_trace(False))
        assert wcg1 == wcg2


class TestFullBodyTrace:
    def test_builds_trace(self):
        program = figure1_program()
        trace = full_body_trace(program, ["M", "X"])
        assert len(trace) == 2
        assert trace[0].length == 32

    def test_unknown_name_rejected(self):
        from repro.errors import ProgramError

        program = figure1_program()
        with pytest.raises(ProgramError):
            full_body_trace(program, ["nope"])
