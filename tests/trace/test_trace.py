"""Tests for the array-backed trace container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.program.procedure import ChunkId
from repro.program.program import Program
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


@pytest.fixture
def program() -> Program:
    return Program.from_sizes({"a": 100, "b": 600, "c": 40})


@pytest.fixture
def trace(program) -> Trace:
    return Trace(
        program,
        [
            TraceEvent.full("a", 100),
            TraceEvent("b", 0, 300),
            TraceEvent("b", 300, 300),
            TraceEvent.full("c", 40),
            TraceEvent.full("a", 100),
        ],
    )


class TestConstruction:
    def test_roundtrip(self, program, trace):
        events = list(trace)
        assert events[0] == TraceEvent("a", 0, 100)
        assert events[2] == TraceEvent("b", 300, 300)
        assert len(trace) == 5

    def test_getitem(self, trace):
        assert trace[3] == TraceEvent("c", 0, 40)

    def test_unknown_procedure_rejected(self, program):
        with pytest.raises(TraceError):
            Trace(program, [TraceEvent("zz", 0, 1)])

    def test_bad_extent_rejected(self, program):
        with pytest.raises(TraceError):
            Trace(program, [TraceEvent("a", 90, 20)])
        with pytest.raises(TraceError):
            Trace(program, [TraceEvent("a", 0, 0)])

    def test_from_arrays(self, program):
        trace = Trace.from_arrays(
            program,
            np.asarray([0, 1]),
            np.asarray([0, 10]),
            np.asarray([50, 20]),
        )
        assert list(trace) == [
            TraceEvent("a", 0, 50),
            TraceEvent("b", 10, 20),
        ]

    def test_from_arrays_validates(self, program):
        with pytest.raises(TraceError):
            Trace.from_arrays(
                program, np.asarray([9]), np.asarray([0]), np.asarray([1])
            )
        with pytest.raises(TraceError):
            Trace.from_arrays(
                program, np.asarray([0]), np.asarray([0]), np.asarray([0])
            )
        with pytest.raises(TraceError):
            Trace.from_arrays(
                program, np.asarray([0, 1]), np.asarray([0]), np.asarray([1])
            )

    def test_array_views_read_only(self, trace):
        with pytest.raises(ValueError):
            trace.proc_indices[0] = 2


class TestDerivedStreams:
    def test_procedure_refs(self, trace):
        assert list(trace.procedure_refs()) == ["a", "b", "b", "c", "a"]

    def test_chunk_refs(self, trace):
        chunks = list(trace.chunk_refs(chunk_size=256))
        assert chunks == [
            ChunkId("a", 0),
            ChunkId("b", 0),
            ChunkId("b", 1),
            ChunkId("b", 1),
            ChunkId("b", 2),
            ChunkId("c", 0),
            ChunkId("a", 0),
        ]


class TestStatistics:
    def test_total_bytes(self, trace):
        assert trace.total_bytes == 100 + 300 + 300 + 40 + 100

    def test_instruction_count(self, trace):
        assert trace.instruction_count(4) == trace.total_bytes // 4

    def test_reference_counts(self, trace):
        assert trace.reference_counts() == {"a": 2, "b": 2, "c": 1}

    def test_byte_counts(self, trace):
        counts = trace.byte_counts()
        assert counts["b"] == 600
        assert counts["a"] == 200

    def test_touched_procedures(self, program):
        trace = Trace(program, [TraceEvent.full("a", 100)])
        assert trace.touched_procedures() == {"a"}

    def test_empty_trace(self, program):
        trace = Trace(program, [])
        assert len(trace) == 0
        assert trace.total_bytes == 0
        assert trace.reference_counts() == {}
