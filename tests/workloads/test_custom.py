"""Tests for JSON workload specifications."""

import json

import pytest

from repro.errors import ConfigError
from repro.workloads.custom import (
    load_workload,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)
from repro.workloads.suite import M88KSIM


def minimal_spec() -> dict:
    return {
        "format": "repro/workload",
        "version": 1,
        "name": "custom",
        "graph": {"n_procedures": 30, "hot_procedures": 6, "seed": 3},
        "train": {"seed": 1, "target_events": 2000},
        "test": {"seed": 2, "target_events": 2500},
    }


class TestFromDict:
    def test_minimal_spec_builds(self):
        workload = workload_from_dict(minimal_spec())
        assert workload.name == "custom"
        assert len(workload.program) == 30
        assert workload.train.target_events == 2000

    def test_defaults_applied(self):
        workload = workload_from_dict(minimal_spec())
        assert workload.graph_params.depth == 6  # library default
        assert workload.train.phases == 4

    def test_generates_traces(self):
        workload = workload_from_dict(minimal_spec())
        assert len(workload.trace("train")) >= 2000

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda spec: spec.pop("format"),
            lambda spec: spec.update(version=2),
            lambda spec: spec.update(name=""),
            lambda spec: spec.pop("graph"),
            lambda spec: spec.update(surprise=1),
            lambda spec: spec["graph"].update(typo_key=5),
            lambda spec: spec["train"].update(name="x"),
            lambda spec: spec["graph"].update(n_procedures="many"),
        ],
    )
    def test_malformed_specs_rejected(self, mutate):
        spec = minimal_spec()
        mutate(spec)
        with pytest.raises(ConfigError):
            workload_from_dict(spec)

    def test_invalid_values_propagate_as_errors(self):
        spec = minimal_spec()
        spec["graph"]["hot_procedures"] = 0
        with pytest.raises(Exception):
            workload_from_dict(spec)


class TestFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "workload.json"
        path.write_text(json.dumps(minimal_spec()))
        workload = load_workload(path)
        assert workload.name == "custom"

    def test_save_then_load(self, tmp_path):
        path = tmp_path / "m88ksim.json"
        save_workload(M88KSIM, path)
        loaded = load_workload(path)
        assert loaded.name == M88KSIM.name
        assert loaded.graph_params == M88KSIM.graph_params
        assert loaded.train == M88KSIM.train
        assert loaded.test == M88KSIM.test

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_workload(tmp_path / "absent.json")

    def test_garbage_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(ConfigError):
            load_workload(path)

    def test_to_dict_matches_format(self):
        data = workload_to_dict(M88KSIM)
        assert data["format"] == "repro/workload"
        assert workload_from_dict(data).graph_params == (
            M88KSIM.graph_params
        )
