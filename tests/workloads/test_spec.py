"""Tests for workload definitions and caching."""

import pytest

from repro.errors import ConfigError
from repro.trace.callgraph import CallGraphParams
from repro.trace.generator import TraceInput
from repro.workloads.spec import Workload


@pytest.fixture
def workload() -> Workload:
    return Workload(
        name="mini",
        graph_params=CallGraphParams(
            n_procedures=30, hot_procedures=6, seed=5
        ),
        train=TraceInput("train", seed=1, target_events=2000),
        test=TraceInput("test", seed=2, target_events=2500),
    )


class TestWorkload:
    def test_program_derivation(self, workload):
        assert len(workload.program) == 30

    def test_traces_memoised(self, workload):
        assert workload.trace("train") is workload.trace("train")

    def test_train_and_test_differ(self, workload):
        train = workload.trace("train")
        test = workload.trace("test")
        assert list(train.proc_indices) != list(test.proc_indices)

    def test_unknown_selector(self, workload):
        with pytest.raises(ConfigError):
            workload.trace("validation")

    def test_scaled_changes_lengths(self, workload):
        scaled = workload.scaled(0.5)
        assert scaled.train.target_events == 1000
        assert scaled.test.target_events == 1250
        assert scaled.graph_params == workload.graph_params

    def test_scaled_floor(self, workload):
        scaled = workload.scaled(0.0001)
        assert scaled.train.target_events == 1000  # floor

    def test_scaled_invalid(self, workload):
        with pytest.raises(ConfigError):
            workload.scaled(0)

    def test_call_graph_shared_across_equal_params(self, workload):
        other = Workload(
            name="other",
            graph_params=workload.graph_params,
            train=workload.train,
            test=workload.test,
        )
        assert workload.call_graph() is other.call_graph()
