"""Tests for the Table 1 benchmark analogs.

The static statistics of each analog must track its Table 1 row; the
dynamic statistics (trace generation) are exercised on scaled-down
versions to keep the suite fast.
"""

import pytest

from repro.workloads.suite import SUITE, by_name

# (name, total_size, total_count, popular_size, popular_count) from
# Table 1 of the paper, sizes in bytes.
TABLE1 = {
    "gcc": (2_277_000, 2005, 351_000, 136),
    "go": (590_000, 3221, 134_000, 112),
    "ghostscript": (1_817_000, 372, 104_000, 216),
    "m88ksim": (549_000, 460, 21_000, 31),
    "perl": (664_000, 271, 83_000, 36),
    "vortex": (1_073_000, 923, 117_000, 156),
}


class TestSuiteStructure:
    def test_six_workloads_in_order(self):
        assert [w.name for w in SUITE] == [
            "gcc",
            "go",
            "ghostscript",
            "m88ksim",
            "perl",
            "vortex",
        ]

    def test_by_name(self):
        assert by_name("perl").name == "perl"

    def test_by_name_unknown(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown workload"):
            by_name("compress")  # excluded by the paper as uninteresting

    def test_unique_seeds(self):
        seeds = [w.graph_params.seed for w in SUITE]
        assert len(set(seeds)) == len(seeds)


class TestTable1Statistics:
    @pytest.mark.parametrize("workload", SUITE, ids=lambda w: w.name)
    def test_procedure_count_matches_table1(self, workload):
        expected_count = TABLE1[workload.name][1]
        assert len(workload.program) == expected_count

    @pytest.mark.parametrize("workload", SUITE, ids=lambda w: w.name)
    def test_total_size_tracks_table1(self, workload):
        """Within a factor of 2 of the Table 1 text-segment size —
        sizes are drawn from a lognormal, so only the scale matters."""
        expected_size = TABLE1[workload.name][0]
        actual = workload.program.total_size
        assert expected_size / 2 <= actual <= expected_size * 2

    @pytest.mark.parametrize("workload", SUITE, ids=lambda w: w.name)
    def test_hot_count_matches_table1(self, workload):
        assert workload.graph_params.hot_procedures == (
            TABLE1[workload.name][3]
        )

    @pytest.mark.parametrize("workload", SUITE, ids=lambda w: w.name)
    def test_train_test_inputs_differ(self, workload):
        assert workload.train.seed != workload.test.seed

    def test_trace_length_ratios_preserved(self):
        """perl's test trace is ~2x its train trace, as in Table 1
        (146M vs 77M basic blocks)."""
        perl = by_name("perl")
        ratio = perl.test.target_events / perl.train.target_events
        assert 1.5 < ratio < 2.5


class TestDynamicBehaviour:
    def test_scaled_workload_generates(self):
        workload = by_name("m88ksim").scaled(0.02)
        trace = workload.trace("train")
        assert len(trace) >= 1000
        # The dynamic working set concentrates on few procedures.
        counts = trace.reference_counts()
        assert len(counts) < len(workload.program) / 2

    def test_mismatched_m88ksim_inputs(self):
        """The m88ksim analog deliberately has a poor train/test match
        (Section 5.3's dcrand-vs-dhry observation): the test input's
        hot mix differs measurably from the train input's."""
        workload = by_name("m88ksim").scaled(0.05)
        train_hot = {
            name
            for name, _ in workload.trace("train")
            .reference_counts()
            .most_common(10)
        }
        test_hot = {
            name
            for name, _ in workload.trace("test")
            .reference_counts()
            .most_common(10)
        }
        assert train_hot != test_hot
