"""End-to-end smoke over every suite analog at tiny scale.

Each of the six Table 1 analogs must survive the complete pipeline —
trace generation, profiling, every placement algorithm, simulation —
with no workload-specific assumptions breaking.  Traces are 1%-scale
to keep this fast.
"""

import pytest

from repro.cache.config import PAPER_CACHE
from repro.cache.simulator import simulate
from repro.core.gbsc import GBSCPlacement
from repro.eval.experiment import build_context
from repro.placement.hkc import HashemiKaeliCalderPlacement
from repro.placement.identity import DefaultPlacement
from repro.placement.ph import PettisHansenPlacement
from repro.workloads.suite import SUITE


@pytest.fixture(scope="module", params=SUITE, ids=lambda w: w.name)
def pipeline(request):
    workload = request.param.scaled(0.01)
    train = workload.trace("train")
    test = workload.trace("test")
    context = build_context(train, PAPER_CACHE)
    return workload, context, test


def test_context_is_populated(pipeline):
    _, context, _ = pipeline
    assert len(context.popular) > 0
    assert context.trgs.select.num_edges() > 0
    assert context.wcg.num_edges() > 0


@pytest.mark.parametrize(
    "algorithm_factory",
    [
        DefaultPlacement,
        PettisHansenPlacement,
        HashemiKaeliCalderPlacement,
        GBSCPlacement,
    ],
    ids=lambda f: f.__name__,
)
def test_every_algorithm_places_every_analog(pipeline, algorithm_factory):
    workload, context, test = pipeline
    layout = algorithm_factory().place(context)
    assert sorted(layout.order_by_address()) == sorted(
        workload.program.names
    )
    stats = simulate(layout, test, PAPER_CACHE)
    assert 0.0 < stats.miss_rate < 0.5


def test_popular_procedures_are_hot(pipeline):
    """Every selected popular procedure actually appears in the
    training trace."""
    workload, context, _ = pipeline
    touched = workload.trace("train").touched_procedures()
    assert set(context.popular) <= touched
