"""Documentation checks: link integrity and API-reference coverage.

Run from the repository root (CI's docs job does exactly this)::

    python tools/check_docs.py

Three checks, all stdlib-only:

* every relative markdown link in ``docs/``, ``README.md`` and
  ``CHANGES.md`` resolves to an existing file or directory;
* every package under ``src/repro/`` has its own section in
  ``docs/api.md``;
* ``docs/caching.md`` is cross-linked from ``docs/architecture.md``
  and ``README.md`` (new subsystems must be reachable from the
  entry-point docs, not just present on disk).

Prints one line per problem and exits 1 when any check fails.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
LINKED_FILES = ("README.md", "CHANGES.md")
LINKED_DIRS = ("docs",)

#: Inline markdown links: [text](target).  Images share the syntax.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Link targets that are not filesystem paths.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")

#: docs/ pages every new subsystem page must be reachable from.
REQUIRED_CROSS_LINKS = {
    "docs/caching.md": ("docs/architecture.md", "README.md"),
}


def markdown_files(repo: Path = REPO) -> list[Path]:
    """The markdown files covered by the link checker."""
    files = [repo / name for name in LINKED_FILES if (repo / name).exists()]
    for directory in LINKED_DIRS:
        files.extend(sorted((repo / directory).glob("*.md")))
    return files


def check_links(path: Path) -> list[str]:
    """Unresolvable relative link targets in one markdown file."""
    problems = []
    in_code_block = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
            continue
        if in_code_block:
            continue
        for target in LINK_PATTERN.findall(line):
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                try:
                    shown = path.relative_to(REPO)
                except ValueError:
                    shown = path
                problems.append(
                    f"{shown}:{number}: dead link target {target!r}"
                )
    return problems


def repro_packages(repo: Path = REPO) -> list[str]:
    """Names of the packages under ``src/repro/``."""
    root = repo / "src" / "repro"
    return sorted(
        entry.name
        for entry in root.iterdir()
        if entry.is_dir() and (entry / "__init__.py").exists()
    )


def check_api_coverage(repo: Path = REPO) -> list[str]:
    """Packages missing their own section in ``docs/api.md``."""
    api = (repo / "docs" / "api.md").read_text()
    problems = []
    for package in repro_packages(repo):
        if f"`repro.{package}`" not in api:
            problems.append(
                f"docs/api.md: no section for package repro.{package}"
            )
    return problems


def check_cross_links(repo: Path = REPO) -> list[str]:
    """Subsystem pages not linked from the required entry points."""
    problems = []
    for page, sources in REQUIRED_CROSS_LINKS.items():
        name = Path(page).name
        for source in sources:
            if name not in (repo / source).read_text():
                problems.append(f"{source}: does not link to {name}")
    return problems


def main() -> int:
    """Run every check; print problems; return a process exit code."""
    problems = []
    for path in markdown_files():
        problems.extend(check_links(path))
    problems.extend(check_api_coverage())
    problems.extend(check_cross_links())
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)")
        return 1
    print(f"docs ok: {len(markdown_files())} file(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
