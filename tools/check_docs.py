"""Documentation checks: link integrity and API-reference coverage.

Run from the repository root (CI's docs job does exactly this)::

    python tools/check_docs.py

Six checks, all stdlib-only (the docs CI job installs nothing, so
source files are *parsed*, never imported):

* every relative markdown link in ``docs/``, ``README.md`` and
  ``CHANGES.md`` resolves to an existing file or directory;
* every package under ``src/repro/`` has its own section in
  ``docs/api.md``;
* every subsystem page (``docs/caching.md``, ``docs/performance.md``,
  ``docs/crash-consistency.md``, ``docs/serving.md``) is cross-linked
  from ``docs/architecture.md`` and ``README.md`` (new subsystems
  must be reachable from the entry-point docs, not just present on
  disk);
* the layering table in ``docs/architecture.md`` mirrors
  ``repro.analysis.layering.LAYERS`` rank-for-rank;
* every ``repro-layout`` subcommand registered in ``src/repro/cli.py``
  (the ``add_parser`` calls on the top-level subparsers object,
  found by AST parsing) has a row in ``docs/api.md`` — a new command
  cannot ship undocumented;
* every registered lint rule id (``rule_id = "..."`` in the analysis
  rule modules), every perf audit rule id (the ``PERF_RULES`` tuple
  in ``repro.analysis.perf_audit``) and every chaos rule id (the
  ``CHAOS_RULES`` tuple in ``repro.analysis.crash_audit``) appears
  in both ``docs/api.md`` and ``docs/architecture.md``.

Prints one line per problem and exits 1 when any check fails.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
LINKED_FILES = ("README.md", "CHANGES.md")
LINKED_DIRS = ("docs",)

#: Inline markdown links: [text](target).  Images share the syntax.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Link targets that are not filesystem paths.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")

#: docs/ pages every new subsystem page must be reachable from.
REQUIRED_CROSS_LINKS = {
    "docs/caching.md": ("docs/architecture.md", "README.md"),
    "docs/performance.md": ("docs/architecture.md", "README.md"),
    "docs/crash-consistency.md": ("docs/architecture.md", "README.md"),
    "docs/serving.md": ("docs/architecture.md", "README.md"),
}


def markdown_files(repo: Path = REPO) -> list[Path]:
    """The markdown files covered by the link checker."""
    files = [repo / name for name in LINKED_FILES if (repo / name).exists()]
    for directory in LINKED_DIRS:
        files.extend(sorted((repo / directory).glob("*.md")))
    return files


def check_links(path: Path) -> list[str]:
    """Unresolvable relative link targets in one markdown file."""
    problems = []
    in_code_block = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
            continue
        if in_code_block:
            continue
        for target in LINK_PATTERN.findall(line):
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                try:
                    shown = path.relative_to(REPO)
                except ValueError:
                    shown = path
                problems.append(
                    f"{shown}:{number}: dead link target {target!r}"
                )
    return problems


def repro_packages(repo: Path = REPO) -> list[str]:
    """Names of the packages under ``src/repro/``."""
    root = repo / "src" / "repro"
    return sorted(
        entry.name
        for entry in root.iterdir()
        if entry.is_dir() and (entry / "__init__.py").exists()
    )


def check_api_coverage(repo: Path = REPO) -> list[str]:
    """Packages missing their own section in ``docs/api.md``."""
    api = (repo / "docs" / "api.md").read_text()
    problems = []
    for package in repro_packages(repo):
        if f"`repro.{package}`" not in api:
            problems.append(
                f"docs/api.md: no section for package repro.{package}"
            )
    return problems


def check_cross_links(repo: Path = REPO) -> list[str]:
    """Subsystem pages not linked from the required entry points."""
    problems = []
    for page, sources in REQUIRED_CROSS_LINKS.items():
        name = Path(page).name
        for source in sources:
            if name not in (repo / source).read_text():
                problems.append(f"{source}: does not link to {name}")
    return problems


def cli_subcommands(repo: Path = REPO) -> list[str]:
    """Top-level ``repro-layout`` subcommands, parsed from ``cli.py``.

    Finds the variable bound to ``argparse.ArgumentParser(...)``
    inside ``build_parser``, then the variable(s) bound to its
    ``.add_subparsers(...)`` result, and finally collects the first
    string argument of every ``<subparsers>.add_parser("name", ...)``
    call.  Nested groups (``cache stats``, ``perf diff`` …) hang off
    *their own* subparsers objects and are deliberately excluded:
    the contract is one api.md row per top-level command.
    """
    source = (repo / "src" / "repro" / "cli.py").read_text()
    build = None
    for node in ast.parse(source).body:
        if isinstance(node, ast.FunctionDef) and node.name == "build_parser":
            build = node
            break
    if build is None:
        raise SystemExit("src/repro/cli.py: build_parser() not found")
    root_vars: set[str] = set()
    sub_vars: set[str] = set()
    for node in ast.walk(build):
        if not (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
        ):
            continue
        func = node.value.func
        names = [
            target.id
            for target in node.targets
            if isinstance(target, ast.Name)
        ]
        is_parser_ctor = (
            isinstance(func, ast.Attribute)
            and func.attr == "ArgumentParser"
        ) or (isinstance(func, ast.Name) and func.id == "ArgumentParser")
        if is_parser_ctor:
            root_vars.update(names)
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "add_subparsers"
            and isinstance(func.value, ast.Name)
            and func.value.id in root_vars
        ):
            sub_vars.update(names)
    commands = []
    for node in ast.walk(build):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_parser"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in sub_vars
            and node.args
        ):
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            commands.append(first.value)
    if not commands:
        raise SystemExit(
            "src/repro/cli.py: no top-level subcommand registrations found"
        )
    return sorted(commands)


def check_cli_docs(repo: Path = REPO) -> list[str]:
    """CLI subcommands registered in ``cli.py`` but absent from
    ``docs/api.md``.

    A command counts as documented when some backtick-quoted span in
    api.md prose is the command name or starts with it (``cache
    stats`` documents ``cache``).  Fenced code blocks are skipped —
    backtick pairing inside them would throw off the inline spans.
    """
    api = (repo / "docs" / "api.md").read_text()
    spans: set[str] = set()
    in_code_block = False
    for line in api.splitlines():
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
            continue
        if not in_code_block:
            spans.update(_CELL_NAME.findall(line))
    problems = []
    for command in cli_subcommands(repo):
        documented = any(
            span == command or span.startswith(command + " ")
            for span in spans
        )
        if not documented:
            problems.append(
                f"docs/api.md: no row for CLI subcommand {command!r} "
                f"(document `repro-layout {command}`)"
            )
    return problems


#: Rows of a two-column markdown table: | rank | `a`, `b` |
_TABLE_ROW = re.compile(r"^\|\s*(\d+)\s*\|(.+)\|\s*$")

#: Backtick-quoted names inside a table cell.
_CELL_NAME = re.compile(r"`([^`]+)`")

#: Lint-rule id assignments in the analysis rule modules.
_RULE_ID = re.compile(r"^\s*rule_id\s*=\s*[\"']([^\"']+)[\"']", re.M)

#: Analysis modules that register lint rules.
RULE_MODULES = (
    "src/repro/analysis/rules.py",
    "src/repro/analysis/layering.py",
    "src/repro/analysis/concsafety.py",
    "src/repro/analysis/parity.py",
)


def declared_layers(repo: Path = REPO) -> list[tuple[str, ...]]:
    """The ``LAYERS`` table, read by parsing, never importing."""
    source = (repo / "src/repro/analysis/layering.py").read_text()
    for node in ast.parse(source).body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            targets = [node.target.id]
        if "LAYERS" in targets and node.value is not None:
            return list(ast.literal_eval(node.value))
    raise SystemExit(
        "src/repro/analysis/layering.py: LAYERS assignment not found"
    )


def documented_layers(repo: Path = REPO) -> list[tuple[str, ...]]:
    """The rank table rows of ``docs/architecture.md``, in order."""
    rows: list[tuple[int, tuple[str, ...]]] = []
    for line in (repo / "docs/architecture.md").read_text().splitlines():
        match = _TABLE_ROW.match(line)
        if match is None:
            continue
        names = tuple(_CELL_NAME.findall(match.group(2)))
        if names:
            rows.append((int(match.group(1)), names))
    return [names for _, names in sorted(rows, key=lambda row: row[0])]


def check_layering_table(repo: Path = REPO) -> list[str]:
    """Drift between ``LAYERS`` and the architecture.md mirror."""
    declared = declared_layers(repo)
    documented = documented_layers(repo)
    if declared == documented:
        return []
    problems = []
    for rank in range(max(len(declared), len(documented))):
        code = declared[rank] if rank < len(declared) else None
        docs = documented[rank] if rank < len(documented) else None
        if code != docs:
            problems.append(
                "docs/architecture.md: layering rank "
                f"{rank} is {docs!r} but "
                f"repro.analysis.layering.LAYERS has {code!r}"
            )
    return problems


def _tuple_rule_ids(relative: str, name: str, repo: Path = REPO) -> list[str]:
    """A module-level rule-id tuple, read by parsing, never importing."""
    source = (repo / relative).read_text()
    for node in ast.parse(source).body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            targets = [node.target.id]
        if name in targets and node.value is not None:
            return list(ast.literal_eval(node.value))
    raise SystemExit(f"{relative}: {name} assignment not found")


def perf_rule_ids(repo: Path = REPO) -> list[str]:
    """The ``PERF_RULES`` tuple of the perf-history auditor."""
    return _tuple_rule_ids(
        "src/repro/analysis/perf_audit.py", "PERF_RULES", repo
    )


def chaos_rule_ids(repo: Path = REPO) -> list[str]:
    """The ``CHAOS_RULES`` tuple of the crash-scene auditor."""
    return _tuple_rule_ids(
        "src/repro/analysis/crash_audit.py", "CHAOS_RULES", repo
    )


def registered_rule_ids(repo: Path = REPO) -> list[str]:
    """Every rule id the analyzers can report: the ``rule_id``
    declarations of the lint rule modules plus the perf auditor's
    ``PERF_RULES`` and the crash auditor's ``CHAOS_RULES``."""
    ids: set[str] = set()
    for relative in RULE_MODULES:
        path = repo / relative
        if not path.exists():
            raise SystemExit(f"{relative}: rule module missing")
        ids.update(_RULE_ID.findall(path.read_text()))
    ids.update(perf_rule_ids(repo))
    ids.update(chaos_rule_ids(repo))
    return sorted(ids)


def check_rule_docs(repo: Path = REPO) -> list[str]:
    """Registered rule ids absent from the reference docs."""
    problems = []
    for doc in ("docs/api.md", "docs/architecture.md"):
        text = (repo / doc).read_text()
        for rule_id in registered_rule_ids(repo):
            if rule_id not in text:
                problems.append(
                    f"{doc}: registered lint rule {rule_id!r} is "
                    "undocumented"
                )
    return problems


def main() -> int:
    """Run every check; print problems; return a process exit code."""
    problems = []
    for path in markdown_files():
        problems.extend(check_links(path))
    problems.extend(check_api_coverage())
    problems.extend(check_cross_links())
    problems.extend(check_layering_table())
    problems.extend(check_cli_docs())
    problems.extend(check_rule_docs())
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)")
        return 1
    print(f"docs ok: {len(markdown_files())} file(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
